"""Phase telemetry: the interval sampler never perturbs simulation,
its per-interval stall-mix deltas sum exactly to the aggregate
taxonomy, interval boundaries (including partial tails) cover every
cycle exactly once, and records merge/pickle across workers."""

import pickle

import pytest

from repro.config import scaled_config
from repro.core.arbiter import SchemeConfig
from repro.harness.perfbench import result_signature
from repro.obs import (
    ADAPT_MECHANISMS,
    ADAPT_MIL,
    ADAPT_QBMI,
    ObsOptions,
    ObsReport,
    adapt_events_from_record,
    merge_phase_records,
)
from repro.obs.stalls import LSU_STALL_REASONS
from repro.obs.timeline import PHASE_SCHED_OUTCOMES, PhaseSampler
from repro.sim.engine import GPU, make_launches
from repro.workloads.profiles import get_profile

ADAPTIVE_SCHEME = {"bmi": "qbmi", "qbmi_init_req_per_minst": (4, 4),
                   "mil": "dmil"}


def run_mix(kernels, tbs, scheme_kwargs=None, cycles=1500, obs=None):
    cfg = scaled_config()
    launches = make_launches([get_profile(k) for k in kernels], list(tbs),
                             cfg, seed=3)
    gpu = GPU(cfg, launches, SchemeConfig(**(scheme_kwargs or {})), obs=obs)
    return gpu.run(cycles)


def phase_record(kernels, tbs, scheme_kwargs=None, cycles=1500,
                 interval=256):
    result = run_mix(kernels, tbs, scheme_kwargs, cycles,
                     obs=ObsOptions(phase=True, phase_interval=interval))
    assert len(result.obs.phases) == 1
    return result, result.obs, result.obs.phases[0]


def by_reason(report):
    agg = {}
    for (_sm, _sched, _k, reason), n in report.sched_stalls.items():
        agg[reason] = agg.get(reason, 0) + n
    return agg


class TestBitIdentity:
    @pytest.mark.parametrize("kernels,tbs,scheme_kwargs", [
        (("st", "sv"), (4, 4), ADAPTIVE_SCHEME),
        (("3m", "bp"), (2, 2), {"smk_quotas": (1, 1)}),
    ])
    def test_sampler_on_matches_sampler_off(self, kernels, tbs,
                                            scheme_kwargs):
        """The sampler is pull-based: switching it on changes no
        simulated stat, against both the unobserved run and the
        observed-without-sampler run."""
        plain = run_mix(kernels, tbs, scheme_kwargs, obs=None)
        observed = run_mix(kernels, tbs, scheme_kwargs, obs=True)
        sampled = run_mix(kernels, tbs, scheme_kwargs,
                          obs=ObsOptions(phase=True, phase_interval=256))
        assert result_signature(sampled) == result_signature(plain)
        assert result_signature(sampled) == result_signature(observed)


class TestExactSum:
    def test_issue_series_sum_to_aggregate_taxonomy(self):
        """Summing each global issue.{reason} series over every row
        (committed + tail) reproduces the aggregate StallTable — the
        deltas lose nothing, exactly."""
        _result, report, record = phase_record(("st", "sv"), (4, 4),
                                               ADAPTIVE_SCHEME)
        agg = by_reason(report)
        series = record["series"]
        for reason in PHASE_SCHED_OUTCOMES:
            assert sum(series[f"issue.{reason}"]) == agg.get(reason, 0)

    def test_per_kernel_series_sum_to_per_kernel_aggregate(self):
        _result, report, record = phase_record(("st", "sv"), (4, 4),
                                               ADAPTIVE_SCHEME)
        per_kernel = {}
        for (_sm, _sched, kernel, reason), n in report.sched_stalls.items():
            key = (kernel, reason)
            per_kernel[key] = per_kernel.get(key, 0) + n
        series = record["series"]
        for kernel in (0, 1):
            for reason in PHASE_SCHED_OUTCOMES:
                assert (sum(series[f"k{kernel}.issue.{reason}"])
                        == per_kernel.get((kernel, reason), 0))

    def test_lsu_series_sum_to_aggregate(self):
        _result, report, record = phase_record(("st", "sv"), (4, 4),
                                               ADAPTIVE_SCHEME)
        per_kernel = {}
        for (_sm, kernel, reason), n in report.lsu_stalls.items():
            key = (kernel, reason)
            per_kernel[key] = per_kernel.get(key, 0) + n
        series = record["series"]
        for kernel in (0, 1):
            for reason in LSU_STALL_REASONS:
                assert (sum(series[f"k{kernel}.lsu.{reason}"])
                        == per_kernel.get((kernel, reason), 0))


class TestIntervals:
    def test_partial_tail_covers_every_cycle_once(self):
        """Run length not a multiple of the interval: committed samples
        plus one uncommitted tail row cover [0, cycles) exactly."""
        _result, _report, record = phase_record(("st", "sv"), (4, 4),
                                                cycles=1000, interval=256)
        windows = record["series"]["window"]
        assert len(windows) == 4  # 3 committed + tail of 232
        assert windows[:3] == [256.0, 256.0, 256.0]
        assert windows[3] == 1000 - 3 * 256
        assert sum(windows) == record["cycles"] == 1000
        assert record["series"]["cycle"][-1] == 1000.0

    def test_exact_multiple_has_no_tail_row(self):
        _result, _report, record = phase_record(("st", "sv"), (4, 4),
                                                cycles=1024, interval=256)
        windows = record["series"]["window"]
        assert windows == [256.0] * 4
        assert sum(windows) == record["cycles"] == 1024

    def test_run_shorter_than_interval_is_one_tail_row(self):
        _result, _report, record = phase_record(("st", "sv"), (4, 4),
                                                cycles=100, interval=256)
        assert record["series"]["window"] == [100.0]

    def test_snapshot_is_non_destructive(self):
        """Snapshotting twice yields identical records: the tail is
        measured without committing baselines."""
        result = run_mix(("st", "sv"), (4, 4), ADAPTIVE_SCHEME,
                         cycles=1000,
                         obs=ObsOptions(phase=True, phase_interval=256))
        record = result.obs.phases[0]
        sampler = PhaseSampler(256)
        assert sampler.samples == 0
        assert record["version"] == 1
        assert record["interval"] == 256
        # The committed rows were unaffected by the tail measurement.
        assert len(record["series"]["window"]) == 4

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            PhaseSampler(0)


class TestAdaptEvents:
    def test_mil_and_qbmi_events_recorded(self):
        _result, report, record = phase_record(("st", "sv"), (4, 4),
                                               ADAPTIVE_SCHEME,
                                               cycles=3000)
        events = adapt_events_from_record(record)
        assert events
        mechanisms = {event.mechanism for event in events}
        assert mechanisms <= set(ADAPT_MECHANISMS)
        assert ADAPT_MIL in mechanisms
        assert ADAPT_QBMI in mechanisms
        # Registry counters fold the same totals.
        assert report.counters["adapt.mil_events"] == sum(
            1 for e in events if e.mechanism == ADAPT_MIL)
        assert report.counters["adapt.qbmi_events"] == sum(
            1 for e in events if e.mechanism == ADAPT_QBMI)

    def test_events_ordered_and_mil_chain_consistent(self):
        """Event cycles are nondecreasing, and each MIL recompute's old
        limit is the previous recompute's new limit for that key."""
        _result, _report, record = phase_record(("st", "sv"), (4, 4),
                                                ADAPTIVE_SCHEME,
                                                cycles=3000)
        events = adapt_events_from_record(record)
        assert all(a.cycle <= b.cycle
                   for a, b in zip(events, events[1:]))
        last = {}
        for event in events:
            if event.mechanism != ADAPT_MIL:
                continue
            key = (event.sm_id, event.kernel)
            if key in last:
                assert event.old == last[key]
            last[key] = event.new

    def test_qbmi_events_carry_req_per_minst(self):
        _result, _report, record = phase_record(("st", "sv"), (4, 4),
                                                ADAPTIVE_SCHEME,
                                                cycles=3000)
        for event in adapt_events_from_record(record):
            if event.mechanism == ADAPT_QBMI:
                assert event.req_per_minst is not None
                assert event.new is not None and event.new >= 1


class TestMergeAndTransport:
    def test_merge_is_associative_concatenation(self):
        a, b, c = [{"id": 1}], [{"id": 2}], [{"id": 3}]
        left = merge_phase_records([merge_phase_records([a, b]), c])
        right = merge_phase_records([a, merge_phase_records([b, c])])
        flat = merge_phase_records([a, b, c])
        assert left == right == flat == [{"id": 1}, {"id": 2}, {"id": 3}]

    def test_obs_report_merge_keeps_every_phase_record(self):
        result_a = run_mix(("st", "sv"), (4, 4), ADAPTIVE_SCHEME,
                           cycles=512,
                           obs=ObsOptions(phase=True, phase_interval=256))
        result_b = run_mix(("3m", "bp"), (2, 2), cycles=512,
                           obs=ObsOptions(phase=True, phase_interval=128))
        merged = ObsReport.merged([result_a.obs, result_b.obs])
        assert len(merged.phases) == 2
        intervals = sorted(record["interval"] for record in merged.phases)
        assert intervals == [128, 256]

    def test_report_with_phases_pickles(self):
        result, report, record = phase_record(("st", "sv"), (4, 4),
                                              ADAPTIVE_SCHEME, cycles=512)
        clone = pickle.loads(pickle.dumps(report))
        assert clone.phases == report.phases
        # And the whole RunResult (the worker-boundary payload).
        result_clone = pickle.loads(pickle.dumps(result))
        assert result_clone.obs.phases[0] == record

    def test_record_is_json_safe(self):
        import json
        _result, _report, record = phase_record(("st", "sv"), (4, 4),
                                                ADAPTIVE_SCHEME, cycles=512)
        assert json.loads(json.dumps(record)) == record
