"""Unit tests for the set-associative tag store and the L1D controller
(reservation-failure semantics of paper §2.1)."""


from repro.config import CacheConfig
from repro.mem.cache import AccessResult, L1DCache, SetAssocCache
from repro.mem.subsystem import MemRequest


def small_cache_config(**overrides):
    defaults = dict(size_bytes=4 * 128, line_size=128, assoc=2,
                    mshrs=2, miss_queue=2, xor_index=False)
    defaults.update(overrides)
    return CacheConfig(**defaults)


def read(line, kernel=0, sm=0):
    return MemRequest(line=line, kernel=kernel, sm_id=sm, is_write=False)


def write(line, kernel=0, sm=0):
    return MemRequest(line=line, kernel=kernel, sm_id=sm, is_write=True)


class TestSetAssocCache:
    def test_reserve_then_fill_makes_line_valid(self):
        tags = SetAssocCache(small_cache_config())
        ok, dirty, _ = tags.reserve(0, kernel=0)
        assert ok and not dirty
        line = tags.probe(0)
        assert line.reserved and not line.valid
        tags.fill(0)
        assert tags.probe(0).valid

    def test_lru_victim_selection(self):
        # 2 sets x 2 ways, no xor: lines 0,2 -> set 0.
        tags = SetAssocCache(small_cache_config())
        for addr in (0, 2):
            tags.reserve(addr, 0)
            tags.fill(addr)
        tags.lookup(0)  # make line 0 MRU
        tags.reserve(4, 0)  # set 0 full -> evict LRU (line 2)
        assert tags.probe(2) is None
        assert tags.probe(0) is not None

    def test_reserved_lines_are_not_evictable(self):
        tags = SetAssocCache(small_cache_config())
        assert tags.reserve(0, 0)[0]
        assert tags.reserve(2, 0)[0]
        ok, _, _ = tags.reserve(4, 0)
        assert not ok, "a set full of reserved lines must refuse allocation"

    def test_invalidate(self):
        tags = SetAssocCache(small_cache_config())
        tags.reserve(0, 0)
        tags.fill(0)
        tags.invalidate(0)
        assert tags.probe(0) is None

    def test_partition_enforced_on_victims(self):
        # 1 set x 4 ways; kernel 0 allowed 1 way, kernel 1 allowed 3.
        cfg = small_cache_config(size_bytes=4 * 128, assoc=4)
        tags = SetAssocCache(cfg)
        tags.partition = {0: 1, 1: 3}
        tags.reserve(0, kernel=0)
        tags.fill(0)
        tags.reserve(1, kernel=0)  # kernel 0 over quota: must evict its own
        assert tags.probe(0) is None, "kernel 0 must evict its own line"
        occ = tags.occupancy_by_kernel()
        assert occ.get(0, 0) == 1

    def test_partition_over_quota_with_only_reserved_lines_fails(self):
        cfg = small_cache_config(size_bytes=4 * 128, assoc=4)
        tags = SetAssocCache(cfg)
        tags.partition = {0: 1, 1: 3}
        tags.reserve(0, kernel=0)  # reserved, not evictable
        ok, _, _ = tags.reserve(1, kernel=0)
        assert not ok

    def test_xor_indexing_spreads_aliases(self):
        cfg = CacheConfig(size_bytes=16 * 128, line_size=128, assoc=2,
                          mshrs=2, miss_queue=2, xor_index=True)
        tags = SetAssocCache(cfg)
        plain = CacheConfig(size_bytes=16 * 128, line_size=128, assoc=2,
                            mshrs=2, miss_queue=2, xor_index=False)
        flat = SetAssocCache(plain)
        stride_sets_plain = {flat.set_index(i * flat.num_sets) for i in range(8)}
        stride_sets_xor = {tags.set_index(i * tags.num_sets) for i in range(8)}
        assert len(stride_sets_plain) == 1
        assert len(stride_sets_xor) > 1


class TestL1DCache:
    def test_miss_then_hit_after_fill(self):
        l1 = L1DCache(small_cache_config())
        req = read(0)
        assert l1.access(req, 0) == AccessResult.MISS
        waiters = l1.fill(0)
        assert waiters == [req]
        assert l1.access(read(0), 1) == AccessResult.HIT
        assert l1.stats.hits[0] == 1
        assert l1.stats.misses[0] == 1

    def test_secondary_miss_merges(self):
        l1 = L1DCache(small_cache_config())
        first, second = read(0), read(0)
        assert l1.access(first, 0) == AccessResult.MISS
        assert l1.access(second, 0) == AccessResult.MISS_MERGED
        assert len(l1.miss_queue) == 1, "secondary miss must not enter miss queue"
        assert set(l1.fill(0)) == {first, second}

    def test_mshr_exhaustion_is_reservation_failure(self):
        l1 = L1DCache(small_cache_config(mshrs=1, miss_queue=8))
        assert l1.access(read(0), 0) == AccessResult.MISS
        result = l1.access(read(1), 0)
        assert result == AccessResult.RSFAIL_MSHR
        assert l1.stats.rsfails[0] == 1
        # the failed access must not count as an access (it replays)
        assert l1.stats.accesses[0] == 1

    def test_miss_queue_exhaustion_is_reservation_failure(self):
        l1 = L1DCache(small_cache_config(miss_queue=1, mshrs=8))
        assert l1.access(read(0), 0) == AccessResult.MISS
        assert l1.access(read(1), 0) == AccessResult.RSFAIL_MISSQ

    def test_line_exhaustion_is_reservation_failure(self):
        l1 = L1DCache(small_cache_config(mshrs=8, miss_queue=8))
        # set 0 holds lines 0 and 2 (2 ways); both reserved.
        assert l1.access(read(0), 0) == AccessResult.MISS
        assert l1.access(read(2), 0) == AccessResult.MISS
        assert l1.access(read(4), 0) == AccessResult.RSFAIL_LINE

    def test_merge_limit_is_reservation_failure(self):
        l1 = L1DCache(small_cache_config(mshr_merge=1))
        assert l1.access(read(0), 0) == AccessResult.MISS
        assert l1.access(read(0), 0) == AccessResult.RSFAIL_MERGE

    def test_replay_after_resource_frees(self):
        l1 = L1DCache(small_cache_config(mshrs=1, miss_queue=8))
        l1.access(read(0), 0)
        blocked = read(1)
        assert l1.access(blocked, 0) == AccessResult.RSFAIL_MSHR
        l1.fill(0)
        assert l1.access(blocked, 1) == AccessResult.MISS

    def test_write_is_wewn(self):
        """Write-evict + write-no-allocate: writes invalidate a present
        line, consume only a miss-queue slot, and never use MSHRs."""
        l1 = L1DCache(small_cache_config(miss_queue=8))
        l1.access(read(0), 0)
        l1.fill(0)
        assert l1.access(write(0), 1) == AccessResult.MISS
        assert len(l1.mshrs) == 0
        assert l1.access(read(0), 2) == AccessResult.MISS, "write evicted the line"

    def test_write_blocked_by_full_miss_queue(self):
        l1 = L1DCache(small_cache_config(miss_queue=1))
        l1.access(read(0), 0)
        assert l1.access(write(8), 0) == AccessResult.RSFAIL_MISSQ

    def test_per_kernel_stats_are_separate(self):
        l1 = L1DCache(small_cache_config(mshrs=8, miss_queue=8))
        l1.access(read(0, kernel=0), 0)
        l1.access(read(1, kernel=1), 0)
        assert l1.stats.accesses[0] == 1
        assert l1.stats.accesses[1] == 1
        assert l1.stats.miss_rate(0) == 1.0
