"""Edge cases for the memory backend's leap machinery.

The engine's fast loop jumps over provably-inert stretches by calling
``MemorySubsystem.skip_cycles`` instead of ticking every cycle.  These
tests pin the equivalence claims that make that safe:

* owed interconnect token refills batched across a leap behave exactly
  like per-cycle refills (compared against the reference loop);
* a leap that lands exactly on a scheduled event still processes that
  event on the landing tick;
* ``quiescent()`` stays False while a DRAM read is in flight even
  though the queues are drained (``leapable()`` True), and the event
  wheel still bounds the leap in that state.
"""

from repro.config import scaled_config
from repro.mem.cache import AccessResult
from repro.mem.subsystem import MemRequest, MemorySubsystem
from repro.sim.wheel import NEVER, EventWheel


class FakeMemInst:
    def __init__(self):
        self.completions = []

    def request_done(self, cycle):
        self.completions.append(cycle)


def leap_drive(mem, start, end):
    """Drive a fastpath subsystem the way the engine does: tick, and
    when the tick reports an inert cycle and the queues are drained,
    leap to ``next_activity`` via ``skip_cycles``."""
    cycle = start
    leaps = 0
    while cycle < end:
        idle = mem.tick(cycle)
        if idle and mem.leapable():
            nxt = mem.next_activity(cycle)
            if nxt > end:
                nxt = end
            if nxt > cycle + 1:
                mem.skip_cycles(nxt - cycle - 1)
                cycle = nxt
                leaps += 1
                continue
        cycle += 1
    return leaps


class Script:
    """A deterministic request schedule, replayable into any subsystem."""

    def __init__(self, events):
        # events: list of (cycle, line, sm_id, is_write)
        self.events = sorted(events)

    def replay(self, mem, horizon, leap):
        """Returns the sorted list of (line, completion_cycle) pairs."""
        insts = {}
        pending = list(self.events)
        cycle = 0
        while cycle < horizon:
            while pending and pending[0][0] == cycle:
                _, line, sm_id, is_write = pending.pop(0)
                inst = None
                if not is_write:
                    inst = FakeMemInst()
                    insts[(line, sm_id)] = inst
                req = MemRequest(line, 0, sm_id, is_write, meminst=inst)
                mem.l1s[sm_id].access(req, cycle)
            idle = mem.tick(cycle)
            if leap and idle and mem.leapable():
                nxt = mem.next_activity(cycle)
                if pending and pending[0][0] < nxt:
                    nxt = pending[0][0]
                if nxt > horizon:
                    nxt = horizon
                if nxt > cycle + 1:
                    mem.skip_cycles(nxt - cycle - 1)
                    cycle = nxt
                    continue
            cycle += 1
        done = []
        for (line, sm_id), inst in insts.items():
            for c in inst.completions:
                done.append((line, sm_id, c))
        return sorted(done)


class TestOwedRefillsAcrossLeap:
    def test_batched_refills_match_reference_loop(self):
        """Bursty traffic separated by idle gaps: the leap path owes
        the interconnect one token refill per skipped cycle, and the
        batched catch-up must reproduce the reference loop's
        completion cycles exactly (tokens cap out identically)."""
        cfg = scaled_config()
        events = []
        # Write bursts drain request tokens (writes carry line_flits
        # each), then short idle shadows, then reads that contend for
        # the recovering tokens.
        line = 0
        for burst_at in (0, 40, 95, 160):
            for i in range(6):
                events.append((burst_at, line, i % 2, True))
                line += 64 * 97
            events.append((burst_at + 2, line, 0, False))
            line += 64 * 97
        ref = Script(events).replay(
            MemorySubsystem(cfg, fastpath=False), 600, leap=False)
        fast = Script(events).replay(
            MemorySubsystem(cfg, fastpath=True), 600, leap=True)
        assert ref, "script must produce completions"
        assert fast == ref

    def test_skip_cycles_advances_drain_pointer(self):
        cfg = scaled_config()
        mem = MemorySubsystem(cfg)
        before = mem._drain_rr
        mem.skip_cycles(3)
        assert mem._drain_rr == (before + 3) % len(mem.l1s)
        assert mem._skipped_refills == 3
        assert mem.idle_cycles == 3


class TestLeapLandsOnEvent:
    def test_landing_tick_processes_the_due_event(self):
        """After a read's miss queue drains into the interconnect, the
        backend is leapable and ``next_activity`` names the l2_arrive
        cycle; ticking exactly there must deliver the request to L2."""
        cfg = scaled_config()
        mem = MemorySubsystem(cfg)
        inst = FakeMemInst()
        req = MemRequest(0, 0, 0, False, meminst=inst)
        assert mem.l1s[0].access(req, 0) == AccessResult.MISS
        mem.tick(0)  # drains the miss queue, schedules l2_arrive
        assert not mem.l1s[0].miss_queue
        assert mem.leapable()
        arrive = mem.next_activity(0)
        assert arrive == cfg.icnt_latency
        mem.skip_cycles(arrive - 1)
        assert not mem.l2_in
        mem.tick(arrive)
        # The event fired on the landing tick: the request reached L2
        # (and, L2 being empty, was processed the same cycle).
        assert mem.l2_stats.accesses[0] == 1

    def test_leap_run_matches_reference_completion_cycle(self):
        cfg = scaled_config()
        script = Script([(0, 0, 0, False)])
        ref = script.replay(MemorySubsystem(cfg, fastpath=False), 400,
                            leap=False)
        fast = script.replay(MemorySubsystem(cfg, fastpath=True), 400,
                             leap=True)
        assert len(ref) == 1
        assert fast == ref


class TestWheelPostAtCurrentCycle:
    """The `next_after` stale-drop edge: entries at or before `now` are
    discarded, so a post *at the current cycle* is invisible to the
    leap evaluated that same cycle.  This is why every mutator posts
    `cycle + 1` (the REPRO-W001 hint) — the engine finishes ticking
    `cycle` unconditionally, and the wheel only needs to name the
    *next* cycle anything can happen."""

    def test_post_at_now_is_stale_by_contract(self):
        wheel = EventWheel()
        wheel.post(10)
        assert wheel.next_after(10) == NEVER

    def test_repost_of_a_drained_cycle_is_not_deduped_away(self):
        # Draining must clear the dedup index: a later re-post of the
        # same cycle value has to re-enter the heap, or the activity it
        # announces would be silently skipped.
        wheel = EventWheel()
        wheel.post(10)
        assert wheel.next_after(10) == NEVER  # drains the entry
        wheel.post(10)
        assert wheel.next_after(9) == 10
        assert len(wheel) == 1

    def test_post_during_drain_is_not_skipped_by_the_leap(self):
        # Engine at cycle 5 with a far-future entry: work enqueued
        # *during* the cycle-5 tick posts its wake as 5 + 1, and the
        # leap evaluated after the tick must land there, not at 40.
        wheel = EventWheel()
        wheel.post(5)
        wheel.post(40)
        assert wheel.next_after(5) == 40  # the cycle-5 entry is stale
        wheel.post(6)  # mutation during the tick pins cycle + 1
        assert wheel.next_after(5) == 6
        # the far entry survives the bounded leap
        assert wheel.next_after(6) == 40


class TestQuiescentDuringDramFlight:
    def test_quiescent_false_until_fill_delivered(self):
        """While the read waits on DRAM the queues are drained
        (leapable) but the request is still in flight: quiescent()
        must say so, and the wheel must bound the leap."""
        cfg = scaled_config()
        mem = MemorySubsystem(cfg)
        inst = FakeMemInst()
        req = MemRequest(0, 0, 0, False, meminst=inst)
        mem.l1s[0].access(req, 0)
        saw_leapable_in_flight = False
        cycle = 0
        while not inst.completions:
            assert not mem.quiescent()
            mem.tick(cycle)
            # The engine evaluates the leap *after* the memory tick,
            # by which point a serving DRAM channel has posted its
            # busy_until into the wheel.
            if (not inst.completions and mem.leapable()
                    and mem.dram.queued):
                saw_leapable_in_flight = True
                # The leap may not sail past the in-flight read: both
                # the scan oracle and the wheel must name a bounded
                # wake cycle.
                assert mem.next_activity(cycle) < NEVER
                assert mem.wheel.next_after(cycle) < NEVER
                # The wheel may only ever be conservative: wake at or
                # before the scan oracle, never after.
                assert (mem.wheel.next_after(cycle)
                        <= mem.next_activity(cycle))
            cycle += 1
            assert cycle < 1000, "read never completed"
        assert saw_leapable_in_flight, \
            "test must observe the drained-but-in-flight state"
        mem.tick(cycle)
        assert mem.quiescent()
