"""Tests for the dynamic Warped-Slicer (online profiling, §2.5)."""

import pytest

from repro.config import scaled_config
from repro.cke.dynamic_ws import DynamicWarpedSlicer
from repro.cke.partition import fits_together
from repro.core.arbiter import SchemeConfig
from repro.harness.runner import ExperimentRunner, RunnerSettings
from repro.workloads.mixes import mix
from repro.workloads.profiles import get_profile

CFG = scaled_config()


def make_slicer(names=("bp", "sv"), **kwargs):
    profiles = [get_profile(n) for n in names]
    kwargs.setdefault("phase_cycles", 600)
    return DynamicWarpedSlicer(profiles, CFG, **kwargs), profiles


class TestConstruction:
    def test_rejects_more_kernels_than_sms(self):
        profiles = [get_profile(n) for n in ("bp", "sv", "ks")]
        with pytest.raises(ValueError):
            DynamicWarpedSlicer(profiles, scaled_config(num_sms=2))

    def test_rejects_bad_settle(self):
        with pytest.raises(ValueError):
            make_slicer(settle_frac=1.0)

    def test_rejects_tiny_phase(self):
        with pytest.raises(ValueError):
            make_slicer(phase_cycles=5)


class TestExecution:
    @pytest.fixture(scope="class")
    def outcome(self):
        slicer, profiles = make_slicer()
        return slicer.execute(measure_cycles=2000,
                              reconfigure_settle=400), profiles

    def test_curves_cover_all_tb_counts(self, outcome):
        dyn, profiles = outcome
        for curve, profile in zip(dyn.curves, profiles):
            assert curve.max_tbs == profile.max_tbs_per_sm(CFG)
            assert all(v >= 0 for v in curve.ipc_by_tbs)

    def test_curves_show_scaling(self, outcome):
        dyn, _ = outcome
        bp_curve = dyn.curves[0]
        assert bp_curve.ipc(2) > bp_curve.ipc(1), (
            "bp must scale with TBs even in online profiling")

    def test_partition_is_feasible(self, outcome):
        dyn, profiles = outcome
        assert fits_together(profiles, list(dyn.partition), CFG)
        assert all(t >= 1 for t in dyn.partition)

    def test_window_accounting(self, outcome):
        dyn, _ = outcome
        assert dyn.measure_cycles == 2000
        assert dyn.profiling_cycles > 0
        assert all(v >= 0 for v in dyn.window_insts.values())
        assert dyn.window_ipc(0) > 0

    def test_total_cycles_conserved(self, outcome):
        dyn, _ = outcome
        assert dyn.result.cycles == (dyn.profiling_cycles + 400
                                     + dyn.measure_cycles)


class TestRunnerIntegration:
    def test_dws_scheme_name(self):
        runner = ExperimentRunner(CFG, RunnerSettings(
            iso_cycles=1200, curve_cycles=800, concurrent_cycles=1500))
        out = runner.run_mix(mix("bp", "sv"), "dws")
        assert out.scheme == "dws"
        assert len(out.partition) == 2
        assert out.weighted_speedup > 0

    def test_dws_with_mechanism_suffix(self):
        runner = ExperimentRunner(CFG, RunnerSettings(
            iso_cycles=1200, curve_cycles=800, concurrent_cycles=1500))
        out = runner.run_mix(mix("bp", "sv"), "dws-dmil")
        assert out.weighted_speedup > 0

    def test_stack_applies_during_dynamic_run(self):
        slicer, _ = make_slicer()
        stack = SchemeConfig(mil="dmil")
        slicer.stack = stack
        dyn = slicer.execute(measure_cycles=800, reconfigure_settle=100)
        assert dyn.window_insts
