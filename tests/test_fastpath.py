"""The optimised cycle loop must be bit-identical to the reference.

``GPU(reference=True)`` disables every fast path — per-cycle callback
closures, scheduler sleep hints, the memory-subsystem idle skip and the
engine's cycle leap — leaving the straightforward scan the seed
implementation used.  These tests drive both loops over the scheme
space (GTO/LRR, BMI, MIL variants, SMK gating, UCP, L1D bypass) and
require every collected statistic to match exactly.
"""

import pytest

from repro.config import scaled_config
from repro.core.arbiter import SchemeConfig
from repro.harness.perfbench import result_signature
from repro.sim.engine import GPU, make_launches
from repro.workloads.profiles import get_profile

CONFIG = scaled_config()
CYCLES = 1500

CASES = [
    ("gto-base", ("3m", "bp"), (4, 4), {}, {}),
    ("gto-single", ("3m",), (2,), {}, {}),
    ("lrr-base", ("3m", "bp"), (4, 4), {}, {"scheduler_policy": "lrr"}),
    ("rbmi-dmil", ("st", "sv"), (4, 4), {"bmi": "rbmi", "mil": "dmil"}, {}),
    ("qbmi", ("st", "sv"), (2, 2),
     {"bmi": "qbmi", "qbmi_init_req_per_minst": (4, 4)}, {}),
    ("smil", ("hs", "cd"), (1, 2),
     {"mil": "smil", "smil_limits": (2, 2)}, {}),
    ("ucp", ("3m", "bp"), (2, 2), {"ucp": True, "ucp_interval": 500}, {}),
    ("smk-quota", ("3m", "bp"), (2, 2), {"smk_quotas": (3, 1)}, {}),
    ("bypass", ("st", "sv"), (2, 2), {"l1d_bypass": (True, False)}, {}),
]


def run_once(kernels, tbs, scheme_kwargs, cfg_kwargs, reference):
    config = scaled_config(**cfg_kwargs) if cfg_kwargs else CONFIG
    profiles = [get_profile(k) for k in kernels]
    # Launches hold mutable stream state: build fresh ones per GPU.
    launches = make_launches(profiles, list(tbs), config, seed=3)
    gpu = GPU(config, launches, SchemeConfig(**scheme_kwargs),
              reference=reference)
    assert gpu.reference is reference
    return gpu.run(CYCLES)


@pytest.mark.parametrize(
    "kernels,tbs,scheme_kwargs,cfg_kwargs",
    [case[1:] for case in CASES],
    ids=[case[0] for case in CASES])
def test_fast_loop_matches_reference(kernels, tbs, scheme_kwargs,
                                     cfg_kwargs):
    ref = run_once(kernels, tbs, scheme_kwargs, cfg_kwargs, reference=True)
    fast = run_once(kernels, tbs, scheme_kwargs, cfg_kwargs, reference=False)
    assert result_signature(fast) == result_signature(ref)
    # IPC is the paper's headline metric — compare it explicitly too.
    for slot in range(len(kernels)):
        assert fast.ipc(slot) == ref.ipc(slot)


def test_reference_env_var_controls_default(monkeypatch):
    config = CONFIG
    launches = make_launches([get_profile("3m")], [1], config, seed=0)
    monkeypatch.setenv("REPRO_REFERENCE_LOOP", "1")
    assert GPU(config, launches, SchemeConfig()).reference is True
    monkeypatch.delenv("REPRO_REFERENCE_LOOP")
    launches = make_launches([get_profile("3m")], [1], config, seed=0)
    assert GPU(config, launches, SchemeConfig()).reference is False


def test_mid_run_tb_limit_change_matches_reference():
    """Dynamic reconfiguration (Warped-Slicer §3) crosses the sleep and
    leap machinery: raising a cap must wake a slept SM identically."""
    results = []
    for reference in (True, False):
        launches = make_launches([get_profile("3m"), get_profile("bp")],
                                 [1, 1], CONFIG, seed=7)
        gpu = GPU(CONFIG, launches, SchemeConfig(), reference=reference)
        gpu.run(400)
        for sm_id in range(CONFIG.num_sms):
            gpu.set_tb_limit(sm_id, 0, 3)
        results.append(result_signature(gpu.run(800)))
    assert results[0] == results[1]
