"""Tests for the CLI and the campaign report generator."""

import pytest

from repro.__main__ import main
from repro.config import scaled_config
from repro.harness.reporting import build_report, write_report
from repro.harness.runner import ExperimentRunner, RunnerSettings

TINY = RunnerSettings(iso_cycles=1000, curve_cycles=800,
                      concurrent_cycles=1200)


class TestReport:
    def test_build_report_contains_sections(self):
        runner = ExperimentRunner(scaled_config(), TINY)
        text = build_report(runner, include_sweeps=False)
        assert "# Reproduction campaign report" in text
        assert "Table 2" in text
        assert "sweet spot" in text
        assert "hardware overhead" in text

    def test_write_report_round_trip(self, tmp_path):
        path = tmp_path / "report.md"
        runner = ExperimentRunner(scaled_config(), TINY)
        text = write_report(str(path), runner, include_sweeps=False)
        assert path.read_text() == text


class TestCLI:
    def test_schemes_listing(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "ws-dmil" in out and "smk-p+w" in out

    def test_run_command(self, capsys):
        assert main(["run", "pf", "bp", "--scheme", "even",
                     "--cycles", "1200"]) == 0
        out = capsys.readouterr().out
        assert "weighted speedup" in out
        assert "pf+bp" in out

    def test_run_with_obs_appends_stall_breakdown(self, capsys):
        assert main(["run", "pf", "bp", "--scheme", "even",
                     "--cycles", "1200", "--obs"]) == 0
        out = capsys.readouterr().out
        assert "scheduler issue-slot breakdown" in out
        assert "issued=" in out

    def test_stalls_command(self, capsys):
        assert main(["stalls", "st", "sv", "--scheme", "even",
                     "--cycles", "1200"]) == 0
        out = capsys.readouterr().out
        assert "scheduler issue-slot breakdown" in out
        assert "st#0" in out and "sv#1" in out

    def test_stalls_rejects_dws(self, capsys):
        assert main(["stalls", "st", "sv", "--scheme", "dws",
                     "--cycles", "600"]) == 2
        assert "dynamic Warped-Slicer" in capsys.readouterr().err

    def test_trace_command_writes_chrome_json(self, tmp_path, capsys):
        import json
        out_path = tmp_path / "trace.json"
        assert main(["trace", "st", "sv", str(out_path), "--scheme", "even",
                     "--cycles", "1200"]) == 0
        assert "trace written" in capsys.readouterr().out
        obj = json.loads(out_path.read_text())
        assert obj["traceEvents"]
        assert {"ph", "name", "pid"} <= set(obj["traceEvents"][0])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["run", "nope", "bp"])
