"""Pool invariants and component-level bit-identity for the
struct-of-arrays memory path (:mod:`repro.mem.pool`).

Three proof obligations ride on the slot pool:

* free-list recycling must never hand out a slot that is still live
  (aliasing two in-flight requests onto one set of fields);
* pool exhaustion must grow deterministically — same capacity curve
  and same slot-id sequence on every run;
* each array-backed component (tag store, MSHR file, DRAM ring queue)
  must be bit-identical to its object twin under randomized operation
  sequences, including the partitioned (UCP) victim path.
"""

import random

import pytest

from repro.config import CacheConfig, scaled_config
from repro.mem.cache import SetAssocCache
from repro.mem.dram import DRAMChannel, RingDRAMChannel
from repro.mem.mshr import MSHRFile
from repro.mem.pool import (DEFAULT_POOL_CAPACITY, ArrayMSHRFile,
                            ArrayTagStore, RequestPool)


# ----------------------------------------------------------------------
# RequestPool invariants
def test_alloc_never_aliases_a_live_slot():
    pool = RequestPool(capacity=8)
    rng = random.Random(17)
    live = set()
    for step in range(4000):
        if live and rng.random() < 0.45:
            slot = rng.choice(sorted(live))
            pool.free(slot)
            live.remove(slot)
        else:
            slot = pool.alloc(line=step, kernel=step % 3, sm_id=0,
                              is_write=False, meminst=None,
                              issued_cycle=step, bypass=False)
            assert slot not in live, "alloc returned a live slot"
            assert pool.live[slot]
            assert pool.line[slot] == step
            live.add(slot)
        assert pool.live_count() == len(live)


def test_double_free_raises():
    pool = RequestPool(capacity=4)
    slot = pool.alloc(1, 0, 0, False, None, 0, False)
    pool.free(slot)
    with pytest.raises(RuntimeError, match="double free"):
        pool.free(slot)


def test_exhaustion_grows_deterministically():
    pool = RequestPool(capacity=4)
    slots = [pool.alloc(i, 0, 0, False, None, 0, False) for i in range(9)]
    # Slot ids are handed out in order; growth extends, never reshuffles.
    assert slots == list(range(9))
    assert pool.grows == 2  # 4 -> 8 -> 16
    assert pool.capacity == 16
    # A second pool driven identically produces the identical sequence.
    twin = RequestPool(capacity=4)
    assert [twin.alloc(i, 0, 0, False, None, 0, False)
            for i in range(9)] == slots
    assert (twin.grows, twin.capacity) == (pool.grows, pool.capacity)


def test_freed_slots_recycle_lifo():
    pool = RequestPool(capacity=4)
    a = pool.alloc(1, 0, 0, False, None, 0, False)
    b = pool.alloc(2, 0, 0, False, None, 0, False)
    pool.free(a)
    pool.free(b)
    assert pool.alloc(3, 0, 0, False, None, 0, False) == b
    assert pool.alloc(4, 0, 0, False, None, 0, False) == a


def test_default_capacity_and_validation():
    assert RequestPool().capacity == DEFAULT_POOL_CAPACITY
    with pytest.raises(ValueError):
        RequestPool(capacity=0)


def test_view_presents_the_request_surface():
    pool = RequestPool(capacity=4)
    inst = object()
    slot = pool.alloc(line=0xAB, kernel=2, sm_id=5, is_write=True,
                      meminst=inst, issued_cycle=42, bypass=True)
    view = pool.view(slot)
    assert (view.line, view.kernel, view.sm_id) == (0xAB, 2, 5)
    assert view.is_write and view.bypass
    assert view.meminst is inst
    assert view.issued_cycle == 42
    assert view.trace_id is None
    view.trace_id = 7  # obs hooks write this through to the pool
    assert pool.trace_id[slot] == 7
    # A fresh allocation of the same slot resets the trace id.
    pool.free(slot)
    assert pool.alloc(1, 0, 0, False, None, 0, False) == slot
    assert pool.view(slot).trace_id is None


# ----------------------------------------------------------------------
# ArrayTagStore vs SetAssocCache
TAG_CONFIG = CacheConfig(size_bytes=4096, line_size=128, assoc=4,
                         mshrs=8, miss_queue=8)


def _tag_state(obj: SetAssocCache):
    state = []
    for target_set in obj._sets:
        for ln in target_set:
            state.append((ln.tag, ln.valid, ln.reserved, ln.dirty,
                          ln.kernel, ln.last_use))
    return state


def _array_state(arr: ArrayTagStore):
    return [(arr.tag[i], arr.valid[i], arr.reserved[i], arr.dirty[i],
             arr.kernel[i], arr.last_use[i])
            for i in range(arr.num_sets * arr.assoc)]


@pytest.mark.parametrize("partition", [None, {0: 1, 1: 3}, {0: 2}],
                         ids=["unpartitioned", "ucp-1-3", "ucp-partial"])
def test_tag_store_matches_object_store_under_fuzz(partition):
    obj = SetAssocCache(TAG_CONFIG)
    arr = ArrayTagStore(TAG_CONFIG)
    obj.partition = arr.partition = partition
    rng = random.Random(23)
    lines = [rng.randrange(512) for _ in range(64)]
    for _step in range(3000):
        line = rng.choice(lines)
        kernel = rng.randrange(2)
        op = rng.random()
        if op < 0.4:
            found_obj = obj.lookup(line)
            way = arr.find(line)
            assert (found_obj is not None) == (way >= 0)
            if way >= 0 and arr.valid[way]:
                arr.touch(way)  # the lookup's valid-hit LRU bump
        elif op < 0.7:
            # The L1 only reserves after a find() miss (the pool's
            # documented contract — duplicate resident tags would make
            # the _where index ambiguous), so the fuzz does too.
            resident = arr.find(line) >= 0
            assert (obj.probe(line) is not None) == resident
            if not resident:
                assert obj.reserve(line, kernel) == arr.reserve(line, kernel)
        elif op < 0.9:
            # Fills arrive for absent lines (the lost-reservation
            # fallback) or outstanding reservations — never for a
            # valid resident line (that fill was already delivered).
            way = arr.find(line)
            if way < 0 or arr.reserved[way]:
                obj.fill(line)
                arr.fill(line)
        else:
            obj.invalidate(line)
            arr.invalidate(line)
        assert _tag_state(obj) == _array_state(arr)
    assert obj.occupancy_by_kernel() == arr.occupancy_by_kernel()


def test_tag_store_probe_semantics():
    arr = ArrayTagStore(TAG_CONFIG)
    assert arr.find(0x10) == -1
    ok, dirty, tag = arr.reserve(0x10, kernel=0)
    assert ok and not dirty and tag == -1
    way = arr.find(0x10)
    assert way >= 0 and arr.reserved[way] and not arr.valid[way]
    arr.fill(0x10)
    way = arr.find(0x10)
    assert arr.valid[way] and not arr.reserved[way]
    arr.invalidate(0x10)
    assert arr.find(0x10) == -1


# ----------------------------------------------------------------------
# ArrayMSHRFile vs MSHRFile
def test_mshr_file_matches_object_file_under_fuzz():
    obj = MSHRFile(capacity=6, merge_limit=3)
    arr = ArrayMSHRFile(capacity=6, merge_limit=3)
    rng = random.Random(41)
    outstanding = []
    waiter = 0
    for _step in range(4000):
        if outstanding and rng.random() < 0.35:
            line = rng.choice(outstanding)
            outstanding.remove(line)
            obj_waiters = obj.release(line).waiters
            arr_waiters = arr.release(line)
            assert obj_waiters == arr_waiters
        else:
            line = rng.randrange(32)
            assert obj.can_merge(line) == arr.can_merge(line)
            if obj.try_merge(line, waiter):
                assert line in outstanding
                arr_ok = arr.try_merge(line, waiter)
                assert arr_ok
            elif line not in outstanding and obj.can_allocate():
                assert not arr.try_merge(line, waiter)
                obj.allocate(line, waiter % 2, waiter)
                arr.allocate(line, waiter % 2, waiter)
                outstanding.append(line)
            waiter += 1
        assert len(obj) == len(arr)
        assert obj.full == arr.full
        assert obj.peak_used == arr.peak_used
        assert obj.occupancy_by_kernel() == arr.occupancy_by_kernel()


def test_mshr_release_errors_match():
    arr = ArrayMSHRFile(capacity=2)
    with pytest.raises(RuntimeError, match="no MSHR outstanding"):
        arr.release(0x99)
    arr.allocate(0x5, 0, waiter=1)
    with pytest.raises(RuntimeError, match="already allocated"):
        arr.allocate(0x5, 0, waiter=2)


def test_mshr_waiter_lists_survive_until_reallocation():
    """``release`` hands back the live list; it must stay intact until
    the entry index is next allocated (the fill fan-out iterates it)."""
    arr = ArrayMSHRFile(capacity=2)
    arr.allocate(0x1, 0, waiter=10)
    arr.merge(0x1, waiter=11)
    waiters = arr.release(0x1)
    assert waiters == [10, 11]
    # The next allocate recycles the entry and only then clears it.
    arr.allocate(0x2, 0, waiter=20)
    assert waiters == [20]


# ----------------------------------------------------------------------
# RingDRAMChannel vs DRAMChannel
def test_ring_channel_matches_deque_channel_under_fuzz():
    config = scaled_config()
    obj = DRAMChannel(config, capacity=16)
    ring = RingDRAMChannel(config, capacity=16)
    rng = random.Random(7)
    obj_done = []
    ring_done = []
    for cycle in range(0, 6000, 2):
        if rng.random() < 0.5 and not obj.full:
            row = rng.randrange(8)
            is_write = rng.random() < 0.3
            payload = None if is_write else cycle
            obj.enqueue(row, is_write, payload)
            ring.ring_push(row, is_write, payload)
        assert obj.full == ring.full
        obj.tick(cycle, lambda p, t: obj_done.append((p, t)))
        ring.tick(cycle, lambda p, t: ring_done.append((p, t)))
        assert obj_done == ring_done
        assert obj.busy_until == ring.busy_until
        assert obj.open_row == ring.open_row
        assert obj.serviced == ring.serviced
        assert obj.row_hits == ring.row_hits
        assert list(obj.queue) == ring.queue
    assert obj.serviced > 100  # the fuzz actually serviced traffic


def test_ring_channel_compaction_preserves_queue():
    """Drive the ring far past COMPACT_THRESHOLD services with entries
    always pending, so compaction fires with a non-empty queue."""
    config = scaled_config()
    ring = RingDRAMChannel(config, capacity=16)
    done = []
    cycle = 0
    for i in range(DRAMChannel(config).config.dram_channels * 0
                   + RingDRAMChannel.COMPACT_THRESHOLD * 3):
        while ring.full:
            cycle += 1
            ring.tick(cycle, lambda p, t: done.append(p))
        ring.ring_push(i % 4, False, i)
        cycle += 1
        ring.tick(cycle, lambda p, t: done.append(p))
    # Drain the remainder.
    while ring.size():
        cycle += ring.busy_until - cycle + 1 if ring.busy_until > cycle else 1
        ring.tick(cycle, lambda p, t: done.append(p))
    # Every payload came back exactly once — compaction lost nothing.
    assert sorted(done) == list(range(RingDRAMChannel.COMPACT_THRESHOLD * 3))
    assert ring._head == 0 or ring._head < RingDRAMChannel.COMPACT_THRESHOLD


def test_ring_push_full_raises():
    ring = RingDRAMChannel(scaled_config(), capacity=2)
    ring.ring_push(0, False, 1)
    ring.ring_push(0, False, 2)
    with pytest.raises(RuntimeError, match="queue full"):
        ring.ring_push(0, False, 3)
