"""Unit tests for the MSHR file."""

import pytest

from repro.mem.mshr import MSHRFile


class TestMSHRFile:
    def test_allocate_and_release(self):
        mshrs = MSHRFile(capacity=2)
        entry = mshrs.allocate(0x100, kernel=0, waiter="a")
        assert len(mshrs) == 1
        assert entry.waiters == ["a"]
        released = mshrs.release(0x100)
        assert released.waiters == ["a"]
        assert len(mshrs) == 0

    def test_capacity_enforced(self):
        mshrs = MSHRFile(capacity=1)
        mshrs.allocate(0x100, 0, "a")
        assert mshrs.full
        assert not mshrs.can_allocate()
        with pytest.raises(RuntimeError):
            mshrs.allocate(0x200, 0, "b")

    def test_merge_secondary_miss(self):
        mshrs = MSHRFile(capacity=4, merge_limit=2)
        mshrs.allocate(0x100, 0, "a")
        assert mshrs.can_merge(0x100)
        mshrs.merge(0x100, "b")
        assert not mshrs.can_merge(0x100), "merge limit reached"
        with pytest.raises(RuntimeError):
            mshrs.merge(0x100, "c")

    def test_cannot_merge_into_absent_entry(self):
        mshrs = MSHRFile(capacity=4)
        assert not mshrs.can_merge(0x500)

    def test_double_allocate_same_line_rejected(self):
        mshrs = MSHRFile(capacity=4)
        mshrs.allocate(0x100, 0, "a")
        with pytest.raises(RuntimeError):
            mshrs.allocate(0x100, 0, "b")

    def test_release_unknown_line_rejected(self):
        with pytest.raises(RuntimeError):
            MSHRFile(capacity=2).release(0x42)

    def test_peak_used_high_water_mark(self):
        mshrs = MSHRFile(capacity=4)
        mshrs.allocate(1, 0, "a")
        mshrs.allocate(2, 0, "b")
        mshrs.release(1)
        mshrs.release(2)
        assert mshrs.peak_used == 2

    def test_occupancy_by_kernel(self):
        mshrs = MSHRFile(capacity=4)
        mshrs.allocate(1, kernel=0, waiter="a")
        mshrs.allocate(2, kernel=1, waiter="b")
        mshrs.allocate(3, kernel=1, waiter="c")
        assert mshrs.occupancy_by_kernel() == {0: 1, 1: 2}

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MSHRFile(capacity=0)
