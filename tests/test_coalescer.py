"""Unit and property tests for the memory coalescer (§2.1)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.coalescer import (
    ThreadAddressPattern,
    coalesce,
    coalescing_degree,
    gather,
    strided,
    unit_stride,
)


class TestCoalesce:
    def test_unit_stride_fully_coalesces(self):
        addrs = [tid * 4 for tid in range(32)]  # 32 x 4B = one 128B line
        assert coalesce(addrs) == [0]
        assert coalescing_degree(addrs) == 1

    def test_stride_two_needs_two_lines(self):
        addrs = [tid * 8 for tid in range(32)]
        assert coalescing_degree(addrs) == 2

    def test_fully_divergent_worst_case(self):
        addrs = [tid * 128 for tid in range(32)]
        assert coalescing_degree(addrs) == 32

    def test_duplicates_merge(self):
        assert coalesce([0, 4, 8, 0, 4]) == [0]

    def test_first_touch_order(self):
        assert coalesce([300, 10, 200]) == [2, 0, 1]

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            coalesce([0], line_size=0)
        with pytest.raises(ValueError):
            coalesce([-4])


class TestGenerators:
    def test_unit_stride_generator(self):
        gen = unit_stride()
        rng = random.Random(0)
        assert coalescing_degree(gen(0, rng)) == 1

    def test_strided_generator_matches_analysis(self):
        # 32 threads, stride 8 elements x 4B = 32B apart -> 8 lines
        gen = strided(8)
        rng = random.Random(0)
        assert coalescing_degree(gen(0, rng)) == 8

    def test_gather_spans_many_lines(self):
        gen = gather(spread_lines=1000)
        rng = random.Random(1)
        degree = coalescing_degree(gen(0, rng))
        assert degree > 16, "random gather is nearly uncoalesced"

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            strided(0)
        with pytest.raises(ValueError):
            gather(0)


class TestThreadAddressPattern:
    def test_advances_per_instruction(self):
        pat = ThreadAddressPattern(unit_stride(), advance_bytes=128)
        rng = random.Random(0)
        first = pat.lines(0, rng, 0)
        second = pat.lines(0, rng, 0)
        assert second[0] == first[0] + 1

    def test_warps_do_not_alias(self):
        pat = ThreadAddressPattern(unit_stride())
        rng = random.Random(0)
        assert set(pat.lines(0, rng, 0)).isdisjoint(pat.lines(1, rng, 0))

    def test_measured_req_per_minst(self):
        assert ThreadAddressPattern(unit_stride()).measured_req_per_minst() \
            == pytest.approx(1.0)
        assert ThreadAddressPattern(strided(8)).measured_req_per_minst() \
            == pytest.approx(8.0)

    def test_runs_inside_simulator(self):
        """A ThreadAddressPattern-backed kernel runs end to end."""
        from repro.config import scaled_config
        from repro.core.arbiter import SchemeConfig
        from repro.sim.engine import GPU, make_launches
        from repro.workloads.kernel import KernelProfile

        profile = KernelProfile(
            name="ts", full_name="thread-stride", suite="custom", kind="M",
            cinst_per_minst=2, reqs_per_minst=8, mlp=2,
            threads_per_tb=64, regs_per_thread=16,
            pattern_factory=lambda: ThreadAddressPattern(strided(8)),
            iters_per_warp=50,
        )
        cfg = scaled_config()
        gpu = GPU(cfg, make_launches([profile], [2], cfg), SchemeConfig())
        result = gpu.run(2000)
        assert result.kernels[0].mem_requests > 0
        # coalescing really produced ~8 requests per memory instruction
        ratio = result.kernels[0].mem_requests / result.kernels[0].mem_insts
        assert 6 <= ratio <= 8


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=64))
def test_coalescing_invariants(addrs):
    lines = coalesce(addrs)
    assert len(lines) == len(set(lines)), "transactions are unique lines"
    assert len(lines) <= len(addrs)
    assert set(lines) == {a // 128 for a in addrs}
