"""Unit tests for the §4.5 energy model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import scaled_config
from repro.core.arbiter import SchemeConfig
from repro.metrics.energy import EnergyModel, EnergyReport, energy_report
from repro.sim.engine import GPU, make_launches
from repro.sim.stats import KernelStats, RunResult
from repro.workloads.profiles import get_profile


def synthetic_result(alu=100, sfu=10, mem=20, l1=40, l2=30, dram=10,
                     flits=50, cycles=1000, num_sms=2):
    stats = KernelStats()
    stats.alu_insts = alu
    stats.sfu_insts = sfu
    stats.mem_insts = mem
    stats.warp_insts = alu + sfu + mem
    return RunResult(
        cycles=cycles, kernel_names=["k"], kernels={0: stats},
        l1d_accesses={0: l1}, l1d_hits={0: l1 // 2}, l1d_misses={0: l1 // 2},
        l1d_rsfails={0: 0}, num_sms=num_sms,
        l2_accesses=l2, l2_misses=l2 // 2, dram_accesses=dram,
        icnt_flits=flits,
    )


class TestEnergyModel:
    def test_rejects_negative_energies(self):
        with pytest.raises(ValueError):
            EnergyModel(dram_access=-1.0)

    def test_leakage_scales_with_area_and_time(self):
        model = EnergyModel(leakage_per_sm_cycle=5.0)
        short = energy_report(synthetic_result(cycles=100), model)
        long = energy_report(synthetic_result(cycles=200), model)
        assert long.leakage == 2 * short.leakage
        assert short.leakage == 5.0 * 2 * 100

    def test_dynamic_component_sums_events(self):
        model = EnergyModel(alu_op=1, sfu_op=0, issue_op=0, l1_access=0,
                            l2_access=0, dram_access=0, icnt_flit=0,
                            leakage_per_sm_cycle=0)
        report = energy_report(synthetic_result(alu=7), model)
        assert report.dynamic == 7

    def test_dram_dominates_per_event(self):
        model = EnergyModel()
        assert model.dram_access > model.l2_access > model.l1_access \
            > model.alu_op

    def test_efficiency_figure(self):
        report = EnergyReport(dynamic=50.0, leakage=50.0,
                              instructions=200, cycles=10)
        assert report.total == 100.0
        assert report.insts_per_energy == 2.0
        assert report.avg_power == 10.0
        assert set(report.breakdown()) == {
            "dynamic", "leakage", "total", "insts_per_energy"}


class TestEnergyOnRealRuns:
    def test_throughput_improvement_amortises_leakage(self):
        """§4.5: same window, more instructions => better efficiency
        whenever leakage is a significant share."""
        cfg = scaled_config()
        launches = make_launches([get_profile("dc")], [8], cfg)
        busy = GPU(cfg, launches, SchemeConfig()).run(2000)
        launches = make_launches([get_profile("dc")], [1], cfg)
        idle = GPU(cfg, launches, SchemeConfig()).run(2000)
        busy_rep = energy_report(busy)
        idle_rep = energy_report(idle)
        assert busy_rep.instructions > idle_rep.instructions
        assert busy_rep.insts_per_energy > idle_rep.insts_per_energy
        assert busy_rep.avg_power > idle_rep.avg_power, (
            "dynamic power rises with utilization — the §4.5 trade-off")


@settings(max_examples=40, deadline=None)
@given(alu=st.integers(0, 10_000), dram=st.integers(0, 5_000),
       cycles=st.integers(1, 100_000))
def test_energy_is_nonnegative_and_monotone(alu, dram, cycles):
    base = energy_report(synthetic_result(alu=alu, dram=dram, cycles=cycles))
    more = energy_report(synthetic_result(alu=alu + 1, dram=dram,
                                          cycles=cycles))
    assert base.total >= 0
    assert more.dynamic >= base.dynamic
