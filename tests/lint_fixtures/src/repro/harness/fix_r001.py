"""REPRO-R001 fixture: module-level state written worker-side, read
parent-side.

``_run_one`` is handed to ``pool.submit`` so it executes in a spawned
worker process — its append lands in the *worker's* copy of
``_RESULTS`` and ``collect_results`` (parent-side) reads import-time
state.  The good worker ships data through its return value instead.
"""

_RESULTS = []
_WORKER_SCRATCH = {}


def _run_one(job):
    outcome = job * 2
    _RESULTS.append(outcome)  # LINT-BAD: REPRO-R001
    _WORKER_SCRATCH[job] = outcome  # LINT-OK: only read worker-side
    return _scratch_hits(job)


def _scratch_hits(job):
    # worker-side read of worker-side state: coherent, no race.
    return _WORKER_SCRATCH.get(job)


def run_campaign(pool, jobs):
    return [pool.submit(_run_one, job) for job in jobs]


def run_campaign_good(pool, jobs):
    futures = [pool.submit(_good_worker, job) for job in jobs]
    return [f.result() for f in futures]


def _good_worker(job):
    return job * 2  # LINT-OK: data rides the picklable return value


def collect_results():
    # parent-side read: sees the import-time empty list, never the
    # workers' appends.
    return list(_RESULTS)


# A module-level slot ledger in the request-pool idiom: the pooled
# memory path keeps per-run pools *inside* the GPU object, but a
# tempting "optimization" is a module-global ledger shared across
# campaign jobs — worker-side writes to it are invisible parent-side.
_SLOT_LEDGER = []


def _pool_worker(job):
    _SLOT_LEDGER.append(job)  # LINT-BAD: REPRO-R001
    return job * 2


def run_pool_campaign(pool, jobs):
    return [pool.submit(_pool_worker, job) for job in jobs]


def pool_slots_seen():
    # parent-side read of the worker-written ledger: import-time empty.
    return list(_SLOT_LEDGER)
