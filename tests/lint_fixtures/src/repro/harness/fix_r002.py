"""REPRO-R002 fixture: class-level mutable attribute written
worker-side, read parent-side.

``JobLog.records`` is shared through the class object, which every
spawned worker re-creates — the worker's append mutates a per-process
copy while ``summarize`` reads the parent's import-time empty list.
``GoodLog`` keeps the container per-instance, which R002 ignores.
"""


class JobLog:
    records = []

    def add(self, rec):
        self.records.append(rec)  # LINT-BAD: REPRO-R002


class GoodLog:
    def __init__(self):
        self.records = []

    def add(self, rec):
        self.records.append(rec)  # LINT-OK: instance attribute


def _worker_run(log, job):
    log.add(job)


def run_jobs(pool, log, jobs):
    return [pool.submit(_worker_run, log, job) for job in jobs]


def summarize():
    # parent-side read through the class object.
    return len(JobLog.records)
