"""REPRO-P001 fixture: unpicklable state on process-crossing classes."""

from dataclasses import dataclass, field


class MixJob:
    score = lambda r: r.ipc  # noqa: E731  LINT-BAD: REPRO-P001

    def __init__(self, kernels):
        self.kernels = kernels
        self.rank = lambda o: o.weighted_speedup  # LINT-BAD: REPRO-P001

    def attach_closure(self, threshold):
        def above(outcome):
            return outcome.antt > threshold
        self.accept = above  # LINT-BAD: REPRO-P001


@dataclass
class RunResult:
    metric: object = field(default=lambda: 0.0)  # LINT-BAD: REPRO-P001
    cycles: int = 0  # LINT-OK: plain data
    stats: dict = field(default_factory=dict)  # LINT-OK: factory runs early


class LocalHelper:
    # Not a process-crossing class: identical patterns are fine here.
    score = lambda r: r.ipc  # noqa: E731  LINT-OK

    def __init__(self):
        self.rank = lambda o: o.ipc  # LINT-OK


def transient_lambdas_are_fine(outcomes):
    return sorted(outcomes, key=lambda o: o.antt)  # LINT-OK: not stored
