"""Scope fixture: SIM-scoped rules must NOT fire outside sim packages.

This file lives under ``src/repro/workloads`` — inside SRC_SCOPE but
outside SIM_SCOPE — so set iteration and ``id()`` use (REPRO-D001 /
REPRO-D004, both SIM-scoped) are allowed here, while SRC-scoped rules
still apply.
"""


def set_iteration_allowed_here(names):
    return [n for n in set(names)]  # LINT-OK: outside SIM_SCOPE


def id_allowed_here(objects):
    return sorted(objects, key=id)  # LINT-OK: outside SIM_SCOPE
