"""REPRO-S005 fixture: a *drifted* stand-in for ``repro.obs.stalls``.

The project index resolves the taxonomy out of whatever module is
indexed as ``repro.obs.stalls`` — this one, when the fixture tree is
the lint root — so the drift below is provable cross-module:
``STALL_EXEC_PORT`` was deleted but the membership tuple still names
it, and the LSU tuple declares a leaf twice.
"""

ISSUED = "issued"
STALL_SCOREBOARD = "scoreboard"
STALL_NO_WARP = "no_warp"
STALL_OTHER = "other"

SCHED_STALL_REASONS = (  # LINT-BAD: REPRO-S005
    STALL_SCOREBOARD,
    STALL_NO_WARP,
    STALL_EXEC_PORT,  # deleted constant: does not resolve
    STALL_OTHER,
)

LSU_STALL_REASONS = (  # LINT-BAD: REPRO-S005
    "rsfail_line",
    "rsfail_mshr",
    "rsfail_line",  # duplicate leaf
)
