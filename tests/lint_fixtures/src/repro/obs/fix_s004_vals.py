"""Support constants for ``fix_s004`` — defined in a *different
package* so the REPRO-S004 test proves cross-module resolution, the
hole the per-file literal check (REPRO-S002) cannot close."""

GOOD_REASON = "scoreboard"
BAD_REASON = "warp_jam"
BAD_MECHANISM = "milx"
