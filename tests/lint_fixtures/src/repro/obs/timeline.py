"""REPRO-S005 fixture: a stand-in for ``repro.obs.timeline`` whose
registry-leaf declarations have *shrunk* relative to the code that
bumps them (see ``fix_s005.py``): ``samples`` and ``qbmi_events`` are
gone here although the real taxonomy still declares them — so the
per-file REPRO-S001 check (which imports the real modules) stays
quiet, and only the indexed-source proof catches the drift."""

ADAPT_MIL = "mil"
ADAPT_QBMI = "qbmi"

ADAPT_MECHANISMS = (ADAPT_MIL, ADAPT_QBMI)
PHASE_REGISTRY_LEAVES = ("interval",)
ADAPT_REGISTRY_LEAVES = ("mil_events",)
