"""REPRO-S002 fixture: stall-reason literals vs the taxonomy."""


def bad_reasons(table, sm, sched, k):
    table.bump_sched(sm, sched, k, "warp_jam")  # LINT-BAD: REPRO-S002
    table.bump_lsu(sm, k, reason="rsfail_tlb")  # LINT-BAD: REPRO-S002


def good_reasons(table, sm, sched, k, reason):
    table.bump_sched(sm, sched, k, "scoreboard")  # LINT-OK: taxonomy member
    table.bump_sched(sm, sched, k, "issued")  # LINT-OK
    table.bump_lsu(sm, k, "rsfail_mshr")  # LINT-OK
    table.bump_lsu(sm, k, reason)  # LINT-OK: non-literal, constant upstream
