"""REPRO-S002 fixture: stall-reason literals vs the taxonomy."""


def bad_reasons(table, sm, sched, k):
    table.bump_sched(sm, sched, k, "warp_jam")  # LINT-BAD: REPRO-S002
    table.bump_lsu(sm, k, reason="rsfail_tlb")  # LINT-BAD: REPRO-S002


def bad_mechanisms(sampler, cycle, sm, k):
    sampler.log_adapt("milx", cycle, sm, k, 2, 4)  # LINT-BAD: REPRO-S002
    sampler.log_adapt(mechanism="dmil", cycle=cycle,  # LINT-BAD: REPRO-S002
                      sm_id=sm, kernel=k, old=2, new=4)


def good_reasons(table, sm, sched, k, reason):
    table.bump_sched(sm, sched, k, "scoreboard")  # LINT-OK: taxonomy member
    table.bump_sched(sm, sched, k, "issued")  # LINT-OK
    table.bump_lsu(sm, k, "rsfail_mshr")  # LINT-OK
    table.bump_lsu(sm, k, reason)  # LINT-OK: non-literal, constant upstream


def good_mechanisms(sampler, cycle, sm, k, mechanism):
    sampler.log_adapt("mil", cycle, sm, k, 2, 4)  # LINT-OK: declared
    sampler.log_adapt("qbmi", cycle, sm, k, 8, 6)  # LINT-OK: declared
    sampler.log_adapt(mechanism, cycle, sm, k, 2, 4)  # LINT-OK: non-literal
