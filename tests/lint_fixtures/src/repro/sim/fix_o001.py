"""REPRO-O001 fixture: sentinel-hook guard discipline."""


class FakeSM:
    def __init__(self, obs):
        self._obs = obs

    def unguarded_call(self, cycle):
        self._obs.issue_event(0, 0, 0, "alu", cycle)  # LINT-BAD: REPRO-O001

    def unguarded_alias(self, cycle):
        obs = self._obs
        table = obs.stalls  # LINT-BAD: REPRO-O001
        return table

    def guarded_call(self, cycle):
        if self._obs is not None:
            self._obs.issue_event(0, 0, 0, "alu", cycle)  # LINT-OK

    def guarded_alias(self, cycle):
        obs = self._obs
        if obs is not None:
            obs.issue_event(0, 0, 0, "alu", cycle)  # LINT-OK

    def early_exit_guard(self, cycle):
        if self._obs is None:
            return
        self._obs.issue_event(0, 0, 0, "alu", cycle)  # LINT-OK

    def and_chain(self, cycle):
        return self._obs is not None and self._obs.stalls  # LINT-OK

    def parameter_is_fine(self, obs, cycle):
        # Callers pass an already-guarded sentinel in; parameters are
        # outside the sentinel tracking on purpose.
        obs.issue_event(0, 0, 0, "alu", cycle)  # LINT-OK

    def bare_load_is_fine(self):
        return self._obs  # LINT-OK: no attribute access through it
