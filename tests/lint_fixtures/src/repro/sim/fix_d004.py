"""REPRO-D004 fixture: id()-derived ordering."""


def id_keyed_map(warps):
    table = {}
    for w in warps:
        table[id(w)] = w  # LINT-BAD: REPRO-D004
    return table


def id_sort(warps):
    return sorted(warps, key=id)  # LINT-BAD: REPRO-D004


def stable_sort_is_fine(warps):
    return sorted(warps, key=lambda w: w.age)  # LINT-OK: stable field
