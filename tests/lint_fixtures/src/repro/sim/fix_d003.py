"""REPRO-D003 fixture: host-clock reads in simulated code."""

import time


def read_clock():
    return time.perf_counter()  # LINT-BAD: REPRO-D003


def read_epoch():
    return time.time()  # LINT-BAD: REPRO-D003


def cycle_time_is_fine(cycle):
    return cycle * 2  # LINT-OK: simulated time only
