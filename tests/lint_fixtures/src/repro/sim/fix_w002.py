"""REPRO-W002 fixture: a drifted leap-state registry.

This module plays the role of ``repro.sim.wheel`` for the project
index (it declares both registry dicts), with one stale entry in each:
``busy_untill`` is a typo no code ever assigns, ``enqueue_teleport``
names a queue method no code ever calls.  The live entries are kept
live by the constructor-exempt code below.
"""

LEAP_STATE_ATTRS = {  # LINT-BAD: REPRO-W002
    "busy_until": "DRAM service horizon",
    "busy_untill": "typo: never assigned anywhere",
}

LEAP_QUEUE_METHODS = {  # LINT-BAD: REPRO-W002
    "enqueue_read": "DRAM read queue push",
    "enqueue_teleport": "removed queue: never called anywhere",
}


class _Channel:
    def __init__(self, queue, first_req):
        # constructor-time queue push: keeps enqueue_read "called"
        # without owing REPRO-W001 a wheel post (wheel not live yet).
        queue.enqueue_read(first_req)  # LINT-OK: constructor

    def reset(self, cycle):
        self.busy_until = cycle + 1  # LINT-OK: constructor-exempt
