"""REPRO-W001 fixture: the PR-4 DRAM-enqueue hazard, reintroduced.

Leap-visible mutations (``busy_until``/``_next_wake``/... assignments,
``enqueue*``/``_schedule`` queue pushes) with no ``wheel.post`` on any
call path must flag; the same mutations discharged locally, through a
caller, via a safe lowering (literal 0 / bare cycle parameter), or in
a constructor must not.
"""

NEVER = 1 << 62


class LeakyPort:
    """Every mutation here is invisible to the leap — the bug class."""

    def enqueue_idle(self, req):
        self.channel.enqueue_read(req)  # LINT-BAD: REPRO-W001

    def stretch_service(self, latency):
        self.busy_until += latency  # LINT-BAD: REPRO-W001

    def arm_timer(self, cycle, delay):
        self._next_wake = cycle + delay  # LINT-BAD: REPRO-W001


class PostedPort:
    """Identical mutations, each discharged one of the sanctioned ways."""

    def __init__(self, channel):
        self.channel = channel
        self._next_wake = NEVER  # LINT-OK: constructor, wheel not live yet

    def enqueue_posted(self, req, cycle):
        self.channel.enqueue_read(req)  # LINT-OK: posts below
        self.wheel.post(cycle + 1)

    def clear_service(self):
        self.busy_until = 0  # LINT-OK: zero lowering wakes earlier only

    def wake_at(self, cycle):
        self._next_wake = cycle  # LINT-OK: bare-parameter lowering

    def _push(self, req):
        self.channel.enqueue_write(req)  # LINT-OK: every caller posts

    def tick(self, req, cycle):
        self._push(req)
        self.wheel.post(cycle + 1)


class LeakyRing:
    """The pooled path's twin of the hazard: ring-queue pushes enqueue
    future DRAM service, so they are leap-visible too."""

    def enqueue_idle(self, row, payload):
        self.channel.ring_push(row, False, payload)  # LINT-BAD: REPRO-W001


class PostedRing:
    """Same ring push, discharged the sanctioned way."""

    def enqueue_posted(self, row, payload, cycle):
        self.channel.ring_push(row, False, payload)  # LINT-OK: posts below
        self.wheel.post(cycle + 1)
