"""REPRO-S001 fixture: registry metric-name hygiene."""


def bad_names(registry, sm_id):
    registry.counter("sm0 issue slots!")  # LINT-BAD: REPRO-S001
    registry.bump("sm0.issue.warp_jam", 1)  # LINT-BAD: REPRO-S001 (leaf)
    registry.gauge(f"sm{sm_id}..mil")  # LINT-BAD: REPRO-S001 (empty seg)
    registry.set("phase.cadence", 256)  # LINT-BAD: REPRO-S001 (phase leaf)
    registry.set("adapt.recomputes", 1)  # LINT-BAD: REPRO-S001 (adapt leaf)


def good_names(registry, sm_id, reason):
    registry.counter("engine.cycles")  # LINT-OK
    registry.bump(f"sm{sm_id}.issue.scoreboard", 1)  # LINT-OK: taxonomy
    registry.bump(f"sm{sm_id}.stall.{reason}", 1)  # LINT-OK: dynamic leaf
    registry.scoped(f"sm{sm_id}.mil.k0")  # LINT-OK
    registry.set("phase.interval", 256)  # LINT-OK: declared phase leaf
    registry.set("adapt.mil_events", 1)  # LINT-OK: declared adapt leaf


def trace_tracks_are_fine(trace, kernel):
    trace.counter(f"dmil limit k{kernel}", 3)  # LINT-OK: trace display name
