"""REPRO-S004 fixture: constant-valued stall reasons that resolve (or
fail to resolve) into the taxonomy.

Every reason here is a *name*, so the per-file REPRO-S002 literal
check skips all of them; only the project index can chase the constant
chain — including across modules — and judge the resolved value.
"""

from repro.obs.fix_s004_vals import BAD_MECHANISM, BAD_REASON, GOOD_REASON

_LOCAL_BAD = "rsfail_teleport"
_LOCAL_GOOD = "rsfail_mshr"


def bad_cross_module(table, sm, sched, k):
    table.bump_sched(sm, sched, k, BAD_REASON)  # LINT-BAD: REPRO-S004


def bad_local_constant(table, sm, k):
    table.bump_lsu(sm, k, _LOCAL_BAD)  # LINT-BAD: REPRO-S004


def bad_mechanism(sampler, cycle, sm, k):
    sampler.log_adapt(BAD_MECHANISM, cycle, sm, k, 2, 4)  # LINT-BAD: REPRO-S004


def good_resolutions(table, sampler, sm, sched, k, reason, cycle):
    table.bump_sched(sm, sched, k, GOOD_REASON)  # LINT-OK: resolves to member
    table.bump_lsu(sm, k, _LOCAL_GOOD)  # LINT-OK: local constant, member
    table.bump_lsu(sm, k, reason)  # LINT-OK: parameter, unresolvable
    table.bump_sched(sm, sched, k, "scoreboard")  # LINT-OK: literal, S002 owns it
