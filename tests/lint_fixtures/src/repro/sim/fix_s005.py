"""REPRO-S005 fixture: registry bumps of leaves the *indexed* taxonomy
(the drifted ``obs/stalls.py`` / ``obs/timeline.py`` stand-ins in this
fixture tree) no longer declares.

Every flagged leaf is still valid in the real taxonomy, so the
per-file REPRO-S001 check passes — the finding only exists because the
project rule judges bump sites against the taxonomy *source being
linted*, which is exactly the deleted-leaf drift it guards against.
"""


def bump_paths(reg, sm_id, reason):
    reg.bump(f"sm{sm_id}.phase.samples")  # LINT-BAD: REPRO-S005
    reg.bump(f"sm{sm_id}.stall.rsfail_missq")  # LINT-BAD: REPRO-S005
    reg.counter("adapt.qbmi_events")  # LINT-BAD: REPRO-S005
    reg.counter(f"sm{sm_id}.phase.interval")  # LINT-OK: still declared
    reg.bump(f"sm{sm_id}.stall.rsfail_mshr")  # LINT-OK: still declared
    reg.bump(f"sm{sm_id}.stall.{reason}")  # LINT-OK: interpolated leaf
