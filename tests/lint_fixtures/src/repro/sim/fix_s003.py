"""REPRO-S003 fixture: stall-classification chains need an else."""

STALL_SMK_GATE = "smk_gate"
STALL_LSU_FULL = "lsu_full"
STALL_OTHER = "other"


def open_chain(gated, full):
    reason = None
    if gated:  # LINT-BAD: REPRO-S003
        reason = STALL_SMK_GATE
    elif full:
        reason = STALL_LSU_FULL
    return reason


def closed_chain(gated, full):
    if gated:  # LINT-OK: else residual present
        reason = STALL_SMK_GATE
    elif full:
        reason = STALL_LSU_FULL
    else:
        reason = STALL_OTHER
    return reason


def unrelated_chain(a, b):
    if a:  # LINT-OK: not a taxonomy classification
        mode = "fast"
    elif b:
        mode = "slow"
    return mode
