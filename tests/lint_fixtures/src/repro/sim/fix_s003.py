"""REPRO-S003 fixture: stall-classification chains need an else."""

STALL_SMK_GATE = "smk_gate"
STALL_LSU_FULL = "lsu_full"
STALL_OTHER = "other"
ADAPT_MIL = "mil"
ADAPT_QBMI = "qbmi"


def open_chain(gated, full):
    reason = None
    if gated:  # LINT-BAD: REPRO-S003
        reason = STALL_SMK_GATE
    elif full:
        reason = STALL_LSU_FULL
    return reason


def closed_chain(gated, full):
    if gated:  # LINT-OK: else residual present
        reason = STALL_SMK_GATE
    elif full:
        reason = STALL_LSU_FULL
    else:
        reason = STALL_OTHER
    return reason


def unrelated_chain(a, b):
    if a:  # LINT-OK: not a taxonomy classification
        mode = "fast"
    elif b:
        mode = "slow"
    return mode


def open_adapt_chain(from_limiter, from_quota):
    mechanism = None
    if from_limiter:  # LINT-BAD: REPRO-S003 (adaptation constants)
        mechanism = ADAPT_MIL
    elif from_quota:
        mechanism = ADAPT_QBMI
    return mechanism


def closed_adapt_chain(from_limiter):
    if from_limiter:  # LINT-OK: else residual present
        mechanism = ADAPT_MIL
    else:
        mechanism = ADAPT_QBMI
    return mechanism
