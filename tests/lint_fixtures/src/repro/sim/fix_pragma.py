"""Pragma fixture: inline suppression of deliberate exceptions."""


def suppressed_same_line(warps):
    for w in set(warps):  # repro-lint: disable=REPRO-D001 (fixture)
        yield w


def suppressed_line_above(warps):
    # repro-lint: disable=REPRO-D001 (fixture, marker on previous line)
    for w in set(warps):
        yield w


def suppressed_all(warps):
    for w in set(warps):  # repro-lint: disable=ALL (fixture)
        yield w


def wrong_rule_id_does_not_suppress(warps):
    for w in set(warps):  # repro-lint: disable=REPRO-D002 LINT-BAD: REPRO-D001
        yield w
