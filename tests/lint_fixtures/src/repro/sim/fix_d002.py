"""REPRO-D002 fixture: global / unseeded RNG use."""

import random


def global_rng_draw():
    return random.randint(1, 8)  # LINT-BAD: REPRO-D002


def unseeded_instance():
    return random.Random()  # LINT-BAD: REPRO-D002


def seeded_is_fine(seed):
    rng = random.Random(seed)  # LINT-OK: explicitly seeded
    return rng.randint(1, 8)
