"""REPRO-D001 fixture: unordered iteration in a sim-scope module."""


def iterate_literal():
    total = 0
    for sm in {0, 1, 2}:  # LINT-BAD: REPRO-D001
        total += sm
    return total


def iterate_call(warps):
    pending = set(warps)
    order = list(pending)  # LINT-BAD: REPRO-D001
    return order


def iterate_keys(table):
    for key in table.keys():  # LINT-BAD: REPRO-D001
        yield key


def comprehension(warps):
    return [w.age for w in frozenset(warps)]  # LINT-BAD: REPRO-D001


def sorted_is_fine(warps):
    pending = set(warps)
    for w in sorted(pending):  # LINT-OK: sorted() restores determinism
        yield w


def membership_is_fine(warps, w):
    pending = set(warps)
    return w in pending  # LINT-OK: membership test, not iteration
