"""Unit and property tests for repro.workloads.kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import scaled_config
from repro.workloads.address import StreamPattern
from repro.workloads.kernel import (
    OP_ALU,
    OP_LOAD,
    OP_SFU,
    OP_STORE,
    InstructionStream,
    KernelProfile,
)


def make_profile(**overrides):
    defaults = dict(
        name="t", full_name="test", suite="unit", kind="C",
        cinst_per_minst=4, reqs_per_minst=2, sfu_frac=0.0, write_frac=0.0,
        threads_per_tb=64, regs_per_thread=16, smem_per_tb=0,
        pattern_factory=StreamPattern, iters_per_warp=5,
    )
    defaults.update(overrides)
    return KernelProfile(**defaults)


class TestKernelProfile:
    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            make_profile(kind="X")

    def test_rejects_missing_pattern(self):
        with pytest.raises(ValueError):
            make_profile(pattern_factory=None)

    def test_warps_per_tb_rounds_up(self):
        assert make_profile(threads_per_tb=96).warps_per_tb(32) == 3
        assert make_profile(threads_per_tb=100).warps_per_tb(32) == 4

    def test_max_tbs_limited_by_threads(self):
        cfg = scaled_config()
        profile = make_profile(threads_per_tb=256, regs_per_thread=1)
        assert profile.max_tbs_per_sm(cfg) == cfg.max_threads_per_sm // 256

    def test_max_tbs_limited_by_registers(self):
        cfg = scaled_config()
        profile = make_profile(threads_per_tb=32, regs_per_thread=256)
        expected = cfg.registers_per_sm // (32 * 256)
        assert profile.max_tbs_per_sm(cfg) == expected

    def test_max_tbs_limited_by_smem(self):
        cfg = scaled_config()
        profile = make_profile(smem_per_tb=cfg.smem_per_sm // 2)
        assert profile.max_tbs_per_sm(cfg) == 2

    def test_occupancy_fractions(self):
        cfg = scaled_config()
        profile = make_profile(threads_per_tb=64, regs_per_thread=16)
        occ = profile.occupancy(cfg, tbs=4)
        assert occ["threads"] == pytest.approx(256 / cfg.max_threads_per_sm)
        assert occ["rf"] == pytest.approx(4 * 64 * 16 / cfg.registers_per_sm)
        assert occ["tbs"] == pytest.approx(4 / cfg.max_tbs_per_sm)


class TestInstructionStream:
    def test_group_structure(self):
        profile = make_profile(cinst_per_minst=3, iters_per_warp=2)
        stream = InstructionStream(profile, StreamPattern(), 0, seed=1)
        ops = []
        while not stream.done:
            ops.append(stream.pop())
        assert ops == [OP_ALU] * 3 + [OP_LOAD] + [OP_ALU] * 3 + [OP_LOAD]

    def test_peek_does_not_consume(self):
        profile = make_profile()
        stream = InstructionStream(profile, StreamPattern(), 0, seed=1)
        assert stream.peek() == stream.peek()
        first = stream.peek()
        assert stream.pop() == first

    def test_store_fraction_all_writes(self):
        profile = make_profile(write_frac=1.0, cinst_per_minst=0, iters_per_warp=4)
        stream = InstructionStream(profile, StreamPattern(), 0, seed=1)
        ops = [stream.pop() for _ in range(4)]
        assert ops == [OP_STORE] * 4

    def test_memory_descriptor_matches_req_per_minst(self):
        profile = make_profile(reqs_per_minst=5, cinst_per_minst=0, iters_per_warp=1)
        stream = InstructionStream(profile, StreamPattern(), 0, seed=1)
        assert stream.pop() == OP_LOAD
        desc = stream.memory_descriptor(is_store=False)
        assert len(desc.lines) == 5
        assert not desc.is_store

    def test_exhausted_stream_raises(self):
        profile = make_profile(iters_per_warp=1, cinst_per_minst=0)
        stream = InstructionStream(profile, StreamPattern(), 0, seed=1)
        stream.pop()
        assert stream.done
        with pytest.raises(RuntimeError):
            stream.pop()

    def test_deterministic_for_same_seed(self):
        profile = make_profile(sfu_frac=0.5, write_frac=0.3, iters_per_warp=20)
        ops_a, ops_b = [], []
        for ops in (ops_a, ops_b):
            stream = InstructionStream(profile, StreamPattern(), 7, seed=42)
            while not stream.done:
                ops.append(stream.pop())
        assert ops_a == ops_b

    def test_remaining_iterations_counts_down(self):
        profile = make_profile(cinst_per_minst=0, iters_per_warp=3)
        stream = InstructionStream(profile, StreamPattern(), 0, seed=1)
        assert stream.remaining_iterations() == 3
        stream.pop()
        assert stream.remaining_iterations() == 2


@settings(max_examples=40, deadline=None)
@given(cinst=st.integers(0, 10), iters=st.integers(1, 30), seed=st.integers(0, 99))
def test_stream_length_is_exact(cinst, iters, seed):
    """Total instructions = iters * (cinst + 1) regardless of randomness."""
    profile = make_profile(cinst_per_minst=cinst, iters_per_warp=iters,
                           sfu_frac=0.3, write_frac=0.2)
    stream = InstructionStream(profile, StreamPattern(), 0, seed=seed)
    count = 0
    while not stream.done:
        stream.pop()
        count += 1
    assert count == iters * (cinst + 1)


@settings(max_examples=40, deadline=None)
@given(cinst=st.integers(1, 10), seed=st.integers(0, 99))
def test_compute_to_memory_ratio_is_exact(cinst, seed):
    profile = make_profile(cinst_per_minst=cinst, iters_per_warp=25,
                           sfu_frac=0.4, write_frac=0.5)
    stream = InstructionStream(profile, StreamPattern(), 0, seed=seed)
    compute = memory = 0
    while not stream.done:
        op = stream.pop()
        if op in (OP_ALU, OP_SFU):
            compute += 1
        else:
            memory += 1
    assert memory == 25
    assert compute == 25 * cinst
