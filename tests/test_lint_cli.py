"""CLI-level linter tests: ``python -m repro lint`` exit codes,
formats, rule selection and baseline flags."""

import json
import os

from repro.__main__ import main

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(HERE)
FIXROOT = os.path.join(HERE, "lint_fixtures")


def run(argv):
    return main(["lint"] + argv)


# ----------------------------------------------------------------------
# exit codes
def test_findings_exit_1(capsys):
    code = run(["src/repro/sim/fix_d001.py", "--root", FIXROOT])
    assert code == 1
    out = capsys.readouterr().out
    assert "REPRO-D001" in out


def test_clean_tree_exits_0(capsys):
    code = run(["src/repro/lint", "--root", REPO_ROOT])
    assert code == 0
    assert "clean: no findings" in capsys.readouterr().out


def test_repo_src_and_tests_are_clean():
    assert run(["src", "tests", "--root", REPO_ROOT]) == 0


def test_unknown_rule_id_exits_2(capsys):
    code = run(["src", "--root", REPO_ROOT, "--select", "REPRO-X999"])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "unknown rule id" in err


def test_missing_path_exits_2(capsys):
    code = run(["no/such/dir", "--root", REPO_ROOT])
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error: ")
    assert "does not exist" in err


def test_missing_baseline_file_exits_2(capsys):
    code = run(["src", "--root", REPO_ROOT,
                "--baseline", "no-such-baseline.json"])
    assert code == 2
    assert "baseline" in capsys.readouterr().err


# ----------------------------------------------------------------------
# rule selection
def test_select_restricts_rules(capsys):
    # fix_d001 violates D001 only; selecting D002 must report nothing.
    code = run(["src/repro/sim/fix_d001.py", "--root", FIXROOT,
                "--select", "REPRO-D002"])
    assert code == 0
    capsys.readouterr()


def test_select_accepts_shorthand_and_lists(capsys):
    code = run(["src/repro/sim/fix_d001.py", "--root", FIXROOT,
                "--select", "d001,o001"])
    assert code == 1
    capsys.readouterr()


def test_select_accepts_family_prefixes(capsys):
    # REPRO-D matches all four determinism rules; fix_d001 still flags.
    code = run(["src/repro/sim/fix_d001.py", "--root", FIXROOT,
                "--select", "REPRO-D"])
    assert code == 1
    out = capsys.readouterr().out
    assert "REPRO-D001" in out

    # a family prefix excluding the violated rule reports nothing
    code = run(["src/repro/sim/fix_d001.py", "--root", FIXROOT,
                "--select", "REPRO-S,REPRO-O"])
    assert code == 0
    capsys.readouterr()


def test_unknown_family_prefix_exits_2(capsys):
    code = run(["src", "--root", REPO_ROOT, "--select", "REPRO-X"])
    assert code == 2
    err = capsys.readouterr().err
    assert "family prefix" in err
    assert "REPRO-W001" in err  # the known-rule list names every rule


def test_list_rules_prints_catalog(capsys):
    assert run(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rid in ("REPRO-D001", "REPRO-D002", "REPRO-D003", "REPRO-D004",
                "REPRO-O001", "REPRO-S001", "REPRO-S002", "REPRO-S003",
                "REPRO-S004", "REPRO-S005", "REPRO-P001", "REPRO-W001",
                "REPRO-W002", "REPRO-R001", "REPRO-R002"):
        assert rid in out
    assert "bad:" in out and "good:" in out


# ----------------------------------------------------------------------
# project mode
def test_project_mode_flags_whole_program_findings(capsys):
    code = run(["src/repro/sim/fix_w001.py", "--root", FIXROOT,
                "--project", "--no-index-cache"])
    assert code == 1
    assert "REPRO-W001" in capsys.readouterr().out


def test_project_mode_whole_repo_clean(capsys):
    code = run(["src", "tests", "scripts", "--root", REPO_ROOT,
                "--project", "--no-index-cache"])
    assert code == 0
    assert "clean: no findings" in capsys.readouterr().out


def test_project_mode_select_by_family(capsys):
    code = run(["src/repro/sim/fix_w001.py", "--root", FIXROOT,
                "--project", "--no-index-cache",
                "--select", "REPRO-R"])
    assert code == 0
    capsys.readouterr()


def test_project_index_cache_flag(tmp_path, capsys):
    cache = str(tmp_path / "index.json")
    code = run(["src/repro/sim/fix_w001.py", "--root", FIXROOT,
                "--project", "--index-cache", cache])
    assert code == 1
    assert os.path.exists(cache)
    # warm run: same findings, served through the cache
    code = run(["src/repro/sim/fix_w001.py", "--root", FIXROOT,
                "--project", "--index-cache", cache])
    assert code == 1
    capsys.readouterr()


def test_index_cache_without_project_exits_2(capsys):
    code = run(["src", "--root", REPO_ROOT, "--index-cache", "x.json"])
    assert code == 2
    assert "--project" in capsys.readouterr().err


# ----------------------------------------------------------------------
# formats
def test_json_format(capsys):
    code = run(["src/repro/sim/fix_d002.py", "--root", FIXROOT,
                "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] >= 2
    assert all(f["rule"] == "REPRO-D002" for f in payload["findings"])


def test_github_format(capsys):
    code = run(["src/repro/sim/fix_d003.py", "--root", FIXROOT,
                "--format", "github"])
    assert code == 1
    out = capsys.readouterr().out
    assert "::error file=src/repro/sim/fix_d003.py" in out
    assert "title=REPRO-D003" in out


# ----------------------------------------------------------------------
# baseline flags
def test_write_then_apply_baseline(tmp_path, capsys):
    baseline = str(tmp_path / "baseline.json")
    code = run(["src/repro/sim/fix_d004.py", "--root", FIXROOT,
                "--baseline", baseline, "--write-baseline"])
    assert code == 0
    assert "baseline written" in capsys.readouterr().out

    code = run(["src/repro/sim/fix_d004.py", "--root", FIXROOT,
                "--baseline", baseline])
    assert code == 0
    assert "clean: no findings" in capsys.readouterr().out


def test_checked_in_baseline_is_empty_and_loadable():
    path = os.path.join(REPO_ROOT, ".repro-lint-baseline.json")
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["version"] == 1
    assert payload["entries"] == []
