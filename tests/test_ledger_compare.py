"""Run-artifact ledger, the `repro compare` regression gate, the HTML
dashboard, and the campaign-telemetry ETA fix."""

import json
import os

import pytest

from repro.__main__ import main
from repro.obs import compare_paths, render_dashboard
from repro.obs.ledger import (
    ARTIFACT_VERSION,
    INDEX_NAME,
    load_artifact,
    load_artifacts,
    write_artifact,
    write_artifacts,
)
from repro.obs.telemetry import CampaignTelemetry, JobHeartbeat


def fake_artifact(workload="st+sv", scheme="even", total_ipc=2.5,
                  ws=1.6, stall_shares=None):
    """A schema-complete artifact built by hand (no simulation)."""
    return {
        "artifact_version": ARTIFACT_VERSION,
        "kind": "run",
        "workload": workload,
        "mix_class": "MC+MC",
        "scheme": scheme,
        "partition": [1, 1],
        "kernels": workload.split("+"),
        "cycles": 2000,
        "seed": 3,
        "config_fingerprint": "deadbeefdeadbeef",
        "git_sha": None,
        "metrics": {
            "weighted_speedup": ws,
            "antt": 1.3,
            "fairness": 0.8,
            "iso_ipcs": [1.5, 1.4],
            "shared_ipcs": [1.2, 1.3],
            "norm_ipcs": [0.8, 0.93],
            "total_ipc": total_ipc,
            "l1d_miss_rates": [0.4, 0.5],
            "lsu_stall_pct": 31.0,
            "dram_row_hit_rate": 0.62,
        },
        "stall_shares": stall_shares or {"issued": 0.5, "scoreboard": 0.3,
                                         "lsu_full": 0.2},
        "lsu_stall_shares": {"rsfail_mshr": 1.0},
        "phases": [],
    }


class TestLedger:
    def test_round_trip_and_index(self, tmp_path):
        arts = [fake_artifact(scheme="even"),
                fake_artifact(scheme="ws-qbmi+dmil", total_ipc=2.8)]
        paths = write_artifacts(str(tmp_path), arts)
        assert all(os.path.exists(p) for p in paths)
        index = json.loads((tmp_path / INDEX_NAME).read_text())
        assert index["artifact_version"] == ARTIFACT_VERSION
        assert len(index["entries"]) == 2
        loaded = load_artifacts(str(tmp_path))
        assert set(loaded) == {("st+sv", "even"), ("st+sv", "ws-qbmi+dmil")}
        assert loaded[("st+sv", "even")] == arts[0]

    def test_single_file_load(self, tmp_path):
        path = write_artifact(str(tmp_path), fake_artifact())
        loaded = load_artifacts(path)
        assert list(loaded) == [("st+sv", "even")]

    def test_slug_sanitises_scheme_names(self, tmp_path):
        path = write_artifact(str(tmp_path),
                              fake_artifact(scheme="ws-qbmi+dmil"))
        assert "+" not in os.path.basename(path)
        assert os.path.basename(path) == "st-sv__ws-qbmi-dmil.json"

    def test_corrupt_file_tolerated(self, tmp_path):
        write_artifact(str(tmp_path), fake_artifact())
        (tmp_path / "broken.json").write_text("{not json")
        (tmp_path / "list.json").write_text("[1, 2, 3]")
        loaded = load_artifacts(str(tmp_path))
        assert list(loaded) == [("st+sv", "even")]

    def test_stale_version_skipped(self, tmp_path):
        stale = fake_artifact()
        stale["artifact_version"] = ARTIFACT_VERSION + 1
        path = write_artifact(str(tmp_path), stale)
        assert load_artifact(path) is None
        assert load_artifacts(str(tmp_path)) == {}

    def test_missing_keys_rejected(self, tmp_path):
        art = fake_artifact()
        del art["workload"]
        path = str(tmp_path / "partial.json")
        with open(path, "w") as fh:
            json.dump(art, fh)
        assert load_artifact(path) is None


class TestCompare:
    def write_sets(self, tmp_path, ipc_b=2.5, shares_b=None):
        dir_a = tmp_path / "a"
        dir_b = tmp_path / "b"
        write_artifacts(str(dir_a), [fake_artifact()])
        write_artifacts(str(dir_b), [fake_artifact(total_ipc=ipc_b,
                                                   stall_shares=shares_b)])
        return str(dir_a), str(dir_b)

    def test_identical_sets_not_regressed(self, tmp_path):
        dir_a, dir_b = self.write_sets(tmp_path)
        comparison = compare_paths(dir_a, dir_b)
        assert len(comparison.cells) == 1
        assert comparison.geomean_ratio() == pytest.approx(1.0)
        assert not comparison.regressed(2.0)

    def test_injected_regression_detected(self, tmp_path):
        dir_a, dir_b = self.write_sets(tmp_path, ipc_b=2.5 * 0.9)
        comparison = compare_paths(dir_a, dir_b)
        assert comparison.regressed(2.0)
        assert not comparison.regressed(15.0)

    def test_stall_mix_shift_reported(self, tmp_path):
        dir_a, dir_b = self.write_sets(
            tmp_path, shares_b={"issued": 0.4, "scoreboard": 0.3,
                                "lsu_full": 0.3})
        cell = compare_paths(dir_a, dir_b).cells[0]
        reason, delta = cell.top_stall_shift()
        assert reason in ("issued", "lsu_full")
        assert abs(delta) == pytest.approx(10.0)

    def test_no_overlap_counts_as_regressed(self, tmp_path):
        dir_a = tmp_path / "a"
        dir_b = tmp_path / "b"
        write_artifacts(str(dir_a), [fake_artifact(workload="st+sv")])
        write_artifacts(str(dir_b), [fake_artifact(workload="bp+sv")])
        comparison = compare_paths(str(dir_a), str(dir_b))
        assert comparison.cells == []
        assert comparison.regressed(2.0)
        assert comparison.only_a == [("st+sv", "even")]
        assert comparison.only_b == [("bp+sv", "even")]


class TestCompareCLI:
    def test_identical_exits_zero_with_check(self, tmp_path, capsys):
        dir_a = tmp_path / "a"
        write_artifacts(str(dir_a), [fake_artifact()])
        code = main(["compare", str(dir_a), str(dir_a), "--check"])
        assert code == 0
        out = capsys.readouterr().out
        assert "geomean total-IPC ratio" in out
        assert "ok" in out

    def test_regression_exits_one_only_with_check(self, tmp_path, capsys):
        dir_a = tmp_path / "a"
        dir_b = tmp_path / "b"
        write_artifacts(str(dir_a), [fake_artifact()])
        write_artifacts(str(dir_b), [fake_artifact(total_ipc=2.0)])
        assert main(["compare", str(dir_a), str(dir_b)]) == 0
        assert main(["compare", str(dir_a), str(dir_b), "--check"]) == 1
        assert main(["compare", str(dir_a), str(dir_b), "--check",
                     "--threshold", "25"]) == 0
        assert "REGRESSION" in capsys.readouterr().out

    def test_no_overlap_exits_two(self, tmp_path):
        dir_a = tmp_path / "a"
        dir_b = tmp_path / "b"
        write_artifacts(str(dir_a), [fake_artifact(workload="st+sv")])
        write_artifacts(str(dir_b), [fake_artifact(workload="bp+sv")])
        assert main(["compare", str(dir_a), str(dir_b)]) == 2


class TestDashboard:
    def artifacts(self, tmp_path, with_phases=False):
        art = fake_artifact()
        if with_phases:
            art["phases"] = [{
                "version": 1, "interval": 256, "cycles": 512, "num_sms": 2,
                "kernel_names": ["st", "sv"],
                "series": {"cycle": [256.0, 512.0], "window": [256.0, 256.0],
                           "dram.bw_util": [0.4, 0.5],
                           "k0.ipc": [1.0, 1.1], "k1.ipc": [0.9, 0.8],
                           "k0.inflight": [3.0, 4.0],
                           "k0.mil_limit": [-1.0, 6.0]},
                "adapt_events": [[300, 0, 0, "mil", None, 6, 12, None],
                                 [400, 0, 1, "qbmi", 0, 4, 0, 3]],
            }]
        directory = tmp_path / "arts"
        write_artifacts(str(directory), [art])
        return str(directory)

    def test_html_is_self_contained(self, tmp_path):
        directory = self.artifacts(tmp_path, with_phases=True)
        html = render_dashboard(load_artifacts(directory).values())
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "<svg" in html
        # No external assets of any kind.
        for needle in ("src=", "href=", "http://", "https://", "@import"):
            assert needle not in html
        assert "st+sv" in html and "even" in html

    def test_dash_cli_writes_file(self, tmp_path, capsys):
        directory = self.artifacts(tmp_path)
        out = tmp_path / "dash.html"
        assert main(["dash", directory, str(out)]) == 0
        text = out.read_text()
        assert "<html" in text and "src=" not in text
        assert str(out) in capsys.readouterr().out

    def test_dash_cli_empty_dir_exits_two(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["dash", str(empty), str(tmp_path / "d.html")]) == 2

    def test_adapt_events_rendered(self, tmp_path):
        directory = self.artifacts(tmp_path, with_phases=True)
        html = render_dashboard(load_artifacts(directory).values())
        assert "rsfails 12" in html


class TestTelemetryEta:
    def beat(self, index, total, duration, cached=False):
        return JobHeartbeat(index=index, total=total, label=f"job {index}",
                            duration_s=duration, sim_cycles=10_000,
                            cache_hit=cached)

    def test_no_heartbeats_no_eta(self):
        telemetry = CampaignTelemetry(quiet=True)
        assert telemetry.eta_s() is None

    def test_all_cached_reports_no_pace(self):
        """A fully warm rerun must not divide wall-clock ≈ 0 by the done
        count and claim an (absurd) instant ETA from cache hits."""
        telemetry = CampaignTelemetry(quiet=True)
        for i in (1, 2):
            telemetry(self.beat(i, total=4, duration=0.0, cached=True))
        assert telemetry.eta_s() is None

    def test_uncached_pace_excludes_cache_hits(self):
        telemetry = CampaignTelemetry(quiet=True)
        telemetry(self.beat(1, total=4, duration=0.0, cached=True))
        telemetry(self.beat(2, total=4, duration=0.5, cached=False))
        telemetry._started -= 1.0  # pretend 1s of wall-clock has passed
        eta = telemetry.eta_s()
        # 2 remaining at ~1s per uncached job, not ~0.5s per done job.
        assert eta == pytest.approx(2.0, rel=0.2)

    def test_done_campaign_eta_zero(self):
        telemetry = CampaignTelemetry(quiet=True)
        telemetry(self.beat(1, total=1, duration=0.2))
        assert telemetry.eta_s() == 0.0

    def test_cache_hits_counted(self):
        telemetry = CampaignTelemetry(quiet=True)
        telemetry(self.beat(1, total=2, duration=0.0, cached=True))
        telemetry(self.beat(2, total=2, duration=0.4))
        assert telemetry.cache_hits == 1
        assert telemetry.jobs_done == 2


class TestCampaignArtifacts:
    def test_parallel_campaign_emits_artifacts_and_phases(self, tmp_path):
        """End to end across the worker boundary: a 2-worker campaign
        with the phase sampler on ships phase records back through
        pickling, stays bit-identical to the serial unobserved loop,
        and the parent writes one artifact per cell plus the index."""
        from repro.config import scaled_config
        from repro.harness.perfbench import outcome_signature
        from repro.harness.runner import ExperimentRunner, RunnerSettings
        from repro.workloads.mixes import WorkloadMix
        from repro.workloads.profiles import get_profile

        settings = RunnerSettings(iso_cycles=600, curve_cycles=400,
                                  concurrent_cycles=800)
        mixes = [WorkloadMix((get_profile("st"), get_profile("sv")))]
        schemes = ["ws", "ws-dmil"]
        arts = tmp_path / "arts"

        sampled_runner = ExperimentRunner(
            scaled_config(), settings, cache_dir=str(tmp_path / "sampled"))
        sampled = sampled_runner.run_campaign(
            mixes, schemes, workers=2, phase_interval=128,
            artifacts_dir=str(arts))

        plain_runner = ExperimentRunner(
            scaled_config(), settings, cache_dir=str(tmp_path / "plain"))
        plain = [plain_runner.run_mix(mix, scheme)
                 for mix in mixes for scheme in schemes]

        for s, p in zip(sampled, plain):
            assert outcome_signature(s) == outcome_signature(p)
        for outcome in sampled:
            assert len(outcome.result.obs.phases) == 1
            assert outcome.result.obs.phases[0]["interval"] == 128

        loaded = load_artifacts(str(arts))
        assert len(loaded) == 2
        assert (arts / INDEX_NAME).exists()
        for (workload, scheme), artifact in loaded.items():
            assert workload == "st+sv"
            assert scheme in schemes
            assert artifact["metrics"]["total_ipc"] > 0
            assert artifact["stall_shares"]
            assert len(artifact["phases"]) == 1
