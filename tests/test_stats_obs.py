"""Satellite regression tests for the stats layer: the cycles==0 IPC
guard and the timeline recorder's gap-filling bump/export."""

from repro.sim.stats import KernelStats, RunResult, TimelineRecorder


class TestTotalIpcGuard:
    def test_zero_cycles_returns_zero(self):
        result = RunResult(cycles=0, kernel_names=["bp"],
                           kernels={0: KernelStats()})
        assert result.total_ipc() == 0.0
        assert result.ipc(0) == 0.0
        assert result.lsu_stall_pct() == 0.0

    def test_normal_division(self):
        stats = KernelStats()
        stats.warp_insts = 500
        result = RunResult(cycles=1000, kernel_names=["bp"],
                           kernels={0: stats})
        assert result.total_ipc() == 0.5


class TestTimelineRecorder:
    def test_bump_fills_long_gap(self):
        rec = TimelineRecorder(interval=100)
        rec.bump("l1d", 0, cycle=50)
        rec.bump("l1d", 0, cycle=950)       # 8 empty buckets between
        assert rec.get("l1d", 0) == [1, 0, 0, 0, 0, 0, 0, 0, 0, 1]

    def test_bump_accumulates_within_bucket(self):
        rec = TimelineRecorder(interval=100)
        rec.bump("issue", 1, cycle=10)
        rec.bump("issue", 1, cycle=99, amount=4)
        assert rec.get("issue", 1) == [5]

    def test_to_dict_round_trip(self):
        rec = TimelineRecorder(interval=10)
        rec.bump("l1d", 0, cycle=5)
        rec.bump("l1d", 1, cycle=25, amount=2)
        d = rec.to_dict()
        assert d["interval"] == 10
        assert d["series"]["l1d"][0] == [1]
        assert d["series"]["l1d"][1] == [0, 0, 2]
        # exported lists are copies, not live references
        d["series"]["l1d"][0].append(99)
        assert rec.get("l1d", 0) == [1]
