"""Unit tests for the hierarchical counter/gauge registry."""

import pytest

from repro.obs.registry import (Counter, CounterRegistry, Gauge, aggregate,
                                snapshot_tree)


class TestCells:
    def test_counter_accumulates(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert c.value == 5
        assert c.kind == "counter"

    def test_gauge_last_write_wins(self):
        g = Gauge("y")
        g.set(3)
        g.set(7)
        assert g.value == 7
        assert g.kind == "gauge"


class TestRegistry:
    def test_counter_handle_is_stable(self):
        reg = CounterRegistry()
        a = reg.counter("sm0.sched2.issue.mil_capped")
        b = reg.counter("sm0.sched2.issue.mil_capped")
        assert a is b
        a.add(3)
        assert reg.snapshot()["sm0.sched2.issue.mil_capped"] == 3

    def test_kind_conflicts_raise(self):
        reg = CounterRegistry()
        reg.counter("a.b")
        reg.gauge("a.c")
        with pytest.raises(TypeError):
            reg.gauge("a.b")
        with pytest.raises(TypeError):
            reg.counter("a.c")

    def test_bump_and_set_shortcuts(self):
        reg = CounterRegistry()
        reg.bump("hits")
        reg.bump("hits", 2)
        reg.set("limit", 6)
        assert reg.snapshot() == {"hits": 3, "limit": 6}
        assert "hits" in reg
        assert "misses" not in reg
        assert len(reg) == 2

    def test_scoped_prefixes_and_nests(self):
        reg = CounterRegistry()
        sm = reg.scoped("sm0")
        lsu = sm.scoped("lsu")
        lsu.counter("rsfail_line").add(2)
        sm.gauge("limit").set(4)
        snap = reg.snapshot()
        assert snap == {"sm0.lsu.rsfail_line": 2, "sm0.limit": 4}

    def test_snapshot_prefix_filter(self):
        reg = CounterRegistry()
        reg.bump("sm0.issue")
        reg.bump("sm1.issue", 5)
        reg.bump("sm10.issue", 7)
        assert reg.snapshot("sm1") == {"sm1.issue": 5}
        assert reg.snapshot("sm1.issue") == {"sm1.issue": 5}

    def test_total_and_matching_patterns(self):
        reg = CounterRegistry()
        reg.bump("sm0.sched0.issue.mil_capped", 2)
        reg.bump("sm0.sched1.issue.mil_capped", 3)
        reg.bump("sm1.sched0.issue.scoreboard", 9)
        assert reg.total("sm*.sched*.issue.mil_capped") == 5
        assert reg.matching("sm1.*") == {"sm1.sched0.issue.scoreboard": 9}

    def test_tree_nests_by_dot(self):
        reg = CounterRegistry()
        reg.bump("sm0.sched2.issue.mil_capped", 7)
        assert reg.tree() == {"sm0": {"sched2": {"issue": {"mil_capped": 7}}}}


class TestMerge:
    def test_counters_add_gauges_overwrite(self):
        reg = CounterRegistry()
        reg.counter("stalls").add(10)
        reg.gauge("limit").set(2)
        reg.merge_snapshot({"stalls": 5, "limit": 9})
        snap = reg.snapshot()
        assert snap["stalls"] == 15
        assert snap["limit"] == 9

    def test_gauge_hint_applies_to_new_names(self):
        reg = CounterRegistry()
        reg.merge_snapshot({"sm0.mil.k0.limit": 3}, gauges=["sm0.mil.k0.limit"])
        reg.merge_snapshot({"sm0.mil.k0.limit": 4}, gauges=["sm0.mil.k0.limit"])
        assert reg.snapshot()["sm0.mil.k0.limit"] == 4

    def test_static_merged(self):
        merged = CounterRegistry.merged(
            [{"a": 1, "b": 2}, {"a": 3}, {"b": 4, "c": 5}])
        assert merged == {"a": 4, "b": 6, "c": 5}


class TestModuleHelpers:
    def test_snapshot_tree_leaf_and_interior_conflict(self):
        tree = snapshot_tree({"a": 1, "a.b": 2})
        assert tree == {"a": {"": 1, "b": 2}}

    def test_aggregate_over_snapshot(self):
        snap = {"sm0.x": 1, "sm1.x": 2, "sm1.y": 10}
        assert aggregate(snap, "sm*.x") == 3
        assert aggregate(snap, "nope.*") == 0
