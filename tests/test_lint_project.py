"""Whole-program linter tests: the module summarizer, the incremental
index cache, the conservative call graph, and each interprocedural
rule family (REPRO-W/R/S004/S005) against its fixture set.

The project fixtures are linted as *file sets* (a whole-program
violation spans modules), with the same LINT-BAD marker contract as
the per-file fixtures: findings must match the markers exactly."""

import json
import os
import re
import textwrap

import pytest

from repro.lint import LintEngine, ProjectIndex, build_index, summarize_source
from repro.lint.callgraph import CallGraph, fid
from repro.lint.project import INDEX_VERSION

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(HERE)
FIXROOT = os.path.join(HERE, "lint_fixtures")

_MARKER_RE = re.compile(r"LINT-BAD:\s*(REPRO-[A-Z]\d+)")

#: rule family -> the fixture file set proving it fires.
PROJECT_FIXTURES = {
    "REPRO-W001": ["src/repro/sim/fix_w001.py"],
    "REPRO-W002": ["src/repro/sim/fix_w002.py"],
    "REPRO-R001": ["src/repro/harness/fix_r001.py"],
    "REPRO-R002": ["src/repro/harness/fix_r002.py"],
    "REPRO-S004": ["src/repro/sim/fix_s004.py",
                   "src/repro/obs/fix_s004_vals.py"],
    "REPRO-S005": ["src/repro/sim/fix_s005.py",
                   "src/repro/obs/stalls.py",
                   "src/repro/obs/timeline.py"],
}


def expected_markers(rel_paths):
    """Sorted (path, line, rule) triples the fixture set declares."""
    expected = []
    for rel_path in rel_paths:
        with open(os.path.join(FIXROOT, rel_path), encoding="utf-8") as fh:
            for lineno, text in enumerate(fh, start=1):
                for match in _MARKER_RE.finditer(text):
                    expected.append((rel_path, lineno, match.group(1)))
    return sorted(expected)


def lint_fixture_set(rel_paths):
    return LintEngine(FIXROOT).lint_project(rel_paths)


# ----------------------------------------------------------------------
# fixtures: exact marker match, per family
@pytest.mark.parametrize("rule_id,rel_paths", sorted(PROJECT_FIXTURES.items()))
def test_fixture_findings_match_markers(rule_id, rel_paths):
    expected = expected_markers(rel_paths)
    assert expected, f"fixture set {rel_paths} declares no LINT-BAD markers"
    got = sorted((f.path, f.line, f.rule)
                 for f in lint_fixture_set(rel_paths))
    assert got == expected
    assert any(rule == rule_id for _p, _l, rule in got)


def test_w001_catches_the_pr4_hazard_shape():
    """The acceptance fixture: a DRAM enqueue with no wheel post on any
    call path — the exact shape of the PR-4 bug — must flag."""
    findings = [f for f in lint_fixture_set(["src/repro/sim/fix_w001.py"])
                if f.rule == "REPRO-W001"]
    assert any("enqueue_read()" in f.message for f in findings)
    assert any("busy_until" in f.message for f in findings)
    # The pooled path's ring-queue push is the same hazard shape.
    assert any("ring_push()" in f.message for f in findings)


def test_r001_catches_worker_written_module_state():
    findings = [f for f in lint_fixture_set(["src/repro/harness/fix_r001.py"])
                if f.rule == "REPRO-R001"]
    assert len(findings) == 2
    assert any("_RESULTS" in f.message for f in findings)
    assert any("_SLOT_LEDGER" in f.message for f in findings)
    assert all("parent-side" in f.message for f in findings)


def test_s005_judges_the_indexed_taxonomy_not_the_installed_one():
    """Every leaf the fixture bumps is valid in the *real* taxonomy
    (per-file REPRO-S001 stays quiet); the findings exist only because
    the drifted fixture stand-ins are what the index resolves."""
    findings = lint_fixture_set(PROJECT_FIXTURES["REPRO-S005"])
    assert all(f.rule == "REPRO-S005" for f in findings)
    leaves = {m for f in findings
              for m in re.findall(r"leaf '(\w+)'", f.message)}
    assert leaves == {"samples", "rsfail_missq", "qbmi_events"}


def test_project_rules_honour_pragma_suppression(tmp_path):
    (tmp_path / "src/repro/sim").mkdir(parents=True)
    mod = tmp_path / "src/repro/sim/leaky.py"
    mod.write_text(
        "class P:\n"
        "    def stretch(self, n):\n"
        "        self.busy_until += n"
        "  # repro-lint: disable=REPRO-W001 (test)\n",
        encoding="utf-8")
    engine = LintEngine(str(tmp_path))
    assert engine.lint_project(["src"]) == []
    assert engine.suppressed == 1


# ----------------------------------------------------------------------
# the whole-repo gate: find-or-prove-absent on the real tree
def test_whole_repo_is_project_clean():
    engine = LintEngine(REPO_ROOT)
    findings = engine.lint_project(["src", "tests", "scripts"])
    assert findings == [], "\n".join(
        f"{f.path}:{f.line}: {f.rule}: {f.message}" for f in findings)


def test_real_leap_registry_is_declared_and_live():
    from repro.sim.wheel import LEAP_QUEUE_METHODS, LEAP_STATE_ATTRS
    assert set(LEAP_STATE_ATTRS) >= {"busy_until", "_sleep_until",
                                     "_next_wake"}
    assert set(LEAP_QUEUE_METHODS) >= {"enqueue", "_schedule"}
    for table in (LEAP_STATE_ATTRS, LEAP_QUEUE_METHODS):
        assert all(isinstance(v, str) and v for v in table.values())


# ----------------------------------------------------------------------
# summarizer facts
def _summarize(source, rel="src/repro/sim/mod.py"):
    return summarize_source(textwrap.dedent(source), rel)


def test_summary_module_level_facts():
    msum = _summarize(
        '''
        from repro.obs import stalls
        from repro.obs.stalls import ISSUED as OK

        NAME = "leaf"
        MUTABLE = []
        ANNOTATED: dict = {}
        TUPLE = (NAME, "lit")

        class Box(Base):
            slots = []

            def __init__(self):
                self.items = []
        ''')
    assert msum["module"] == "repro.sim.mod"
    assert msum["imports"]["stalls"] == "repro.obs.stalls"
    assert msum["imports"]["OK"] == "repro.obs.stalls.ISSUED"
    assert msum["str_constants"]["NAME"] == "leaf"
    assert set(msum["module_mutables"]) == {"MUTABLE", "ANNOTATED"}
    elems = msum["tuple_constants"]["TUPLE"]["elems"]
    assert elems == [["name", "NAME"], ["str", "lit"]]
    box = msum["classes"]["Box"]
    assert box["bases"] == ["Base"]
    assert "slots" in box["mutable_attrs"]
    assert "items" in box["self_assigned"]


def test_summary_function_facts():
    msum = _summarize(
        '''
        def work(pool, jobs, cycle):
            pool.submit(run_one, jobs[0])
            total = 0
            _SEEN.append(total)
            return helper(cycle)

        class Port:
            def go(self, cycle, delay):
                self.busy_until = cycle + delay
                self.wheel.post(cycle + 1)

            def lower(self, cycle):
                self._next_wake = cycle
                self.busy_until = 0
        ''')
    work = msum["functions"]["work"]
    assert work["entry_refs"] == ["run_one"]
    assert any(key == "helper" for key, _ in work["calls"])
    assert any(key == "_SEEN" and kind == "mutcall"
               for key, kind, _l, _c in work["writes"])
    # `total` is a local: never recorded as shared state
    assert not any(key == "total" for key, *_ in work["writes"])
    go = msum["functions"]["Port.go"]
    assert go["posts_wheel"]
    assert [(a, k) for a, _l, _c, k in go["leap_writes"]] \
        == [("busy_until", "other")]
    lower = msum["functions"]["Port.lower"]
    assert not lower["posts_wheel"]
    assert sorted((a, k) for a, _l, _c, k in lower["leap_writes"]) \
        == [("_next_wake", "param"), ("busy_until", "zero")]


def test_summary_drops_mutation_receiver_loads():
    msum = _summarize(
        '''
        CACHE = {}

        def clear():
            CACHE.clear()

        def read():
            return len(CACHE)
        ''')
    clear = msum["functions"]["clear"]
    assert any(key == "CACHE" for key, *_ in clear["writes"])
    # the receiver Name-load of the mutating call must not double as a
    # "read" (it made R001 flag every clear() helper)
    assert not any(key.startswith("CACHE") for key, _ in clear["loads"])
    assert any(key == "CACHE" for key, _ in msum["functions"]["read"]["loads"])


# ----------------------------------------------------------------------
# call graph
def _index_of(sources):
    index = ProjectIndex(FIXROOT)
    for rel, src in sources.items():
        index.add(summarize_source(textwrap.dedent(src), rel))
    return index


def test_callgraph_resolves_methods_and_imports():
    graph = CallGraph(_index_of({
        "src/repro/sim/a.py": '''
            from repro.sim.b import helper

            class Base:
                def shared(self):
                    pass

            class Child(Base):
                def run(self):
                    self.shared()
                    helper()
            ''',
        "src/repro/sim/b.py": '''
            def helper():
                pass
            ''',
    }))
    run = fid("src/repro/sim/a.py", "Child.run")
    assert set(graph.edges[run]) == {
        fid("src/repro/sim/a.py", "Base.shared"),
        fid("src/repro/sim/b.py", "helper"),
    }
    assert run in graph.callers[fid("src/repro/sim/b.py", "helper")]


def test_worker_reachability_closes_over_callees():
    graph = CallGraph(_index_of({
        "src/repro/harness/p.py": '''
            def fan_out(pool, jobs):
                return [pool.submit(entry, j) for j in jobs]

            def entry(job):
                return deeper(job)

            def deeper(job):
                return job

            def parent_only(job):
                return job
            ''',
    }))
    worker = graph.worker_reachable()
    rel = "src/repro/harness/p.py"
    assert fid(rel, "entry") in worker
    assert fid(rel, "deeper") in worker
    assert fid(rel, "parent_only") not in worker
    assert fid(rel, "fan_out") not in worker


# ----------------------------------------------------------------------
# incremental cache
def _write_module(path, body):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(body), encoding="utf-8")


def test_cache_round_trip_hit_and_invalidation(tmp_path):
    mod = tmp_path / "src/repro/sim/m.py"
    _write_module(mod, "X = 'one'\n")
    cache = str(tmp_path / "cache.json")
    root = str(tmp_path)

    index = build_index(root, [str(mod)], cache)
    rel = "src/repro/sim/m.py"
    assert index.summaries[rel]["str_constants"]["X"] == "one"
    with open(cache, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["version"] == INDEX_VERSION
    assert rel in payload["files"]

    # poison the cached summary: an unchanged (mtime, size) file must
    # be served from cache, so the poison is visible...
    payload["files"][rel]["summary"]["str_constants"]["X"] = "poisoned"
    with open(cache, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    index = build_index(root, [str(mod)], cache)
    assert index.summaries[rel]["str_constants"]["X"] == "poisoned"

    # ...until a touch invalidates the entry and re-summarizes
    stat = os.stat(mod)
    os.utime(mod, (stat.st_atime, stat.st_mtime + 10))
    index = build_index(root, [str(mod)], cache)
    assert index.summaries[rel]["str_constants"]["X"] == "one"


def test_cache_version_mismatch_rebuilds(tmp_path):
    mod = tmp_path / "src/repro/sim/m.py"
    _write_module(mod, "X = 'one'\n")
    cache = str(tmp_path / "cache.json")
    root = str(tmp_path)
    build_index(root, [str(mod)], cache)
    with open(cache, encoding="utf-8") as fh:
        payload = json.load(fh)
    payload["version"] = INDEX_VERSION + 999
    payload["files"]["src/repro/sim/m.py"]["summary"][
        "str_constants"]["X"] = "poisoned"
    with open(cache, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    index = build_index(root, [str(mod)], cache)
    assert index.summaries["src/repro/sim/m.py"][
        "str_constants"]["X"] == "one"
    with open(cache, encoding="utf-8") as fh:
        assert json.load(fh)["version"] == INDEX_VERSION


def test_corrupt_cache_is_a_cold_cache(tmp_path):
    mod = tmp_path / "src/repro/sim/m.py"
    _write_module(mod, "X = 'one'\n")
    cache = tmp_path / "cache.json"
    cache.write_text("{not json", encoding="utf-8")
    index = build_index(str(tmp_path), [str(mod)], str(cache))
    assert index.summaries["src/repro/sim/m.py"][
        "str_constants"]["X"] == "one"
