"""Unit and property tests for BMI (RBMI/QBMI, paper §3.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bmi import (
    MAX_REQ_PER_MINST,
    QuotaBMI,
    ReqPerMinstEstimator,
    RoundRobinBMI,
    UnmanagedIssue,
    compute_quotas,
)


class TestComputeQuotas:
    def test_paper_formula_lcm(self):
        # Quota_i = LCM(r...) / r_i
        assert compute_quotas([2, 3]) == [3, 2]
        assert compute_quotas([1, 17]) == [17, 1]
        assert compute_quotas([2, 2]) == [1, 1]

    def test_equal_requests_per_round(self):
        rates = [2, 3, 17]
        quotas = compute_quotas(rates)
        served = [q * r for q, r in zip(quotas, rates)]
        assert len(set(served)) == 1, "each kernel gets the same request share"

    def test_rates_are_clamped(self):
        quotas = compute_quotas([1, 1000])
        assert quotas[1] == 1
        assert quotas[0] == MAX_REQ_PER_MINST

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            compute_quotas([])


class TestEstimator:
    def test_tracks_ratio_after_window(self):
        est = ReqPerMinstEstimator(window=8)
        for _ in range(4):
            est.note_mem_inst()
            est.note_request()
            est.note_request()
        assert est.value == 2

    def test_partial_ratio_early(self):
        est = ReqPerMinstEstimator(window=1024)
        for _ in range(10):
            est.note_mem_inst()
            for _ in range(3):
                est.note_request()
        assert est.value == 3

    def test_default_before_any_data(self):
        assert ReqPerMinstEstimator().value == 1


class TestRoundRobin:
    def test_alternates_between_competing_kernels(self):
        rbmi = RoundRobinBMI(2)
        grants = []
        for _ in range(6):
            idx = rbmi.pick([0, 1])
            grants.append([0, 1][idx])
        assert grants == [0, 1, 0, 1, 0, 1]

    def test_loose_when_turn_holder_absent(self):
        rbmi = RoundRobinBMI(2)
        assert rbmi.pick([0]) == 0  # kernel 0 granted, turn -> 1
        # kernel 1 never proposes; kernel 0 must still be served.
        assert rbmi.pick([0]) == 0

    def test_three_kernels_cycle(self):
        rbmi = RoundRobinBMI(3)
        grants = [rbmi.pick([0, 1, 2]) for _ in range(6)]
        kernels = [[0, 1, 2][g] for g in grants]
        assert kernels == [0, 1, 2, 0, 1, 2]


class TestQuotaBMI:
    def test_priority_goes_to_larger_quota(self):
        qbmi = QuotaBMI(2, initial_req_per_minst=(2, 17))
        # quotas: LCM(2,17)=34 -> [17, 2]; kernel 0 must win first.
        winner = qbmi.pick([0, 1])
        assert [0, 1][winner] == 0

    def test_request_share_converges_to_balance(self):
        """Over many contested cycles the granted request volume per
        kernel should be roughly equal (that is QBMI's goal)."""
        rates = (2, 8)
        qbmi = QuotaBMI(2, initial_req_per_minst=rates)
        served_reqs = [0, 0]
        for _ in range(2000):
            winner = [0, 1][qbmi.pick([0, 1])]
            served_reqs[winner] += rates[winner]
        ratio = served_reqs[0] / served_reqs[1]
        assert 0.8 < ratio < 1.25

    def test_replenish_on_exhaustion(self):
        qbmi = QuotaBMI(2, initial_req_per_minst=(1, 1))
        # quotas [1, 1]; two picks drain both; a third must not fail.
        for _ in range(5):
            qbmi.pick([0, 1])
        assert max(qbmi.quotas) > 0

    def test_zero_quota_kernel_can_still_issue_alone(self):
        """The paper's replenish rule: a kernel with zero quota is never
        blocked when no other kernel competes."""
        qbmi = QuotaBMI(2, initial_req_per_minst=(1, 17))
        for _ in range(50):
            assert qbmi.pick([1]) == 0  # only kernel 1 proposes; index 0

    def test_estimator_feedback(self):
        qbmi = QuotaBMI(2, window=8)
        for _ in range(4):
            qbmi.note_mem_inst(0)
            qbmi.note_request(0)
            qbmi.note_request(0)
        assert qbmi.estimators[0].value == 2

    def test_rejects_mismatched_init(self):
        with pytest.raises(ValueError):
            QuotaBMI(2, initial_req_per_minst=(1,))


class TestUnmanaged:
    def test_first_proposal_wins(self):
        assert UnmanagedIssue().pick([3, 1, 2]) == 0


@settings(max_examples=50, deadline=None)
@given(rates=st.lists(st.integers(1, 32), min_size=1, max_size=4))
def test_quota_invariants(rates):
    quotas = compute_quotas(rates)
    assert all(q >= 1 for q in quotas)
    served = {q * r for q, r in zip(quotas, rates)}
    assert len(served) == 1


@settings(max_examples=25, deadline=None)
@given(r0=st.integers(1, 20), r1=st.integers(1, 20), seed=st.integers(0, 5))
def test_qbmi_never_starves_either_kernel(r0, r1, seed):
    qbmi = QuotaBMI(2, initial_req_per_minst=(r0, r1))
    wins = [0, 0]
    for _ in range(500):
        wins[[0, 1][qbmi.pick([0, 1])]] += 1
    assert wins[0] > 0 and wins[1] > 0
