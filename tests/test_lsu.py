"""Unit tests for the LSU memory pipeline (in-order, replay-on-stall)."""

import pytest

from repro.config import CacheConfig
from repro.mem.cache import L1DCache
from repro.sim.lsu import LoadStoreUnit
from repro.sim.warp import MemInst, ThreadBlock, Warp
from repro.workloads.address import StreamPattern
from repro.workloads.kernel import InstructionStream, KernelProfile


class FakeBundle:
    def __init__(self, bypass=()):
        self._bypass = set(bypass)

    def bypasses_l1d(self, kernel):
        return kernel in self._bypass


class FakeSM:
    # Hooks observed per-call below, so the LSU must not defer stall
    # accounting (the real SM advertises inert hooks the same way).
    _mem_hooks_inert = False

    def __init__(self, bypass=()):
        self.requests = []
        self.rsfails = []
        self.bundle = FakeBundle(bypass)

    def on_request_issued(self, request, result, cycle):
        self.requests.append((request.line, result))

    def on_rsfail(self, kernel, cycle):
        self.rsfails.append(kernel)


def make_inst(lines, is_store=False, kernel=0):
    profile = KernelProfile(
        name="t", full_name="t", suite="u", kind="C",
        cinst_per_minst=1, reqs_per_minst=len(lines), write_frac=0.0,
        threads_per_tb=32, regs_per_thread=8,
        pattern_factory=StreamPattern, iters_per_warp=1,
    )
    tb = ThreadBlock(0, kernel, profile)
    stream = InstructionStream(profile, StreamPattern(), 0, seed=0)
    warp = Warp(0, kernel, tb, stream, age=0, mlp=4)
    completions = []
    inst = MemInst(warp, tuple(lines), is_store, 0,
                   on_complete=lambda i, c: completions.append(c))
    return inst, completions


def make_lsu(width=2, mshrs=8, miss_queue=8):
    cfg = CacheConfig(size_bytes=8 * 128, line_size=128, assoc=2,
                      mshrs=mshrs, miss_queue=miss_queue, xor_index=False)
    return LoadStoreUnit(0, L1DCache(cfg), width=width)


class TestLSU:
    def test_expands_width_requests_per_cycle(self):
        lsu = make_lsu(width=2)
        sm = FakeSM()
        lsu.enqueue(make_inst([0, 1, 2, 3])[0])
        lsu.tick(0, sm)
        assert len(sm.requests) == 2
        lsu.tick(1, sm)
        assert len(sm.requests) == 4
        assert not lsu.queue, "fully expanded instruction leaves the queue"

    def test_queue_capacity(self):
        lsu = make_lsu()
        for _ in range(lsu.queue_depth):
            lsu.enqueue(make_inst([0])[0])
        assert not lsu.can_accept()
        with pytest.raises(RuntimeError):
            lsu.enqueue(make_inst([1])[0])

    def test_stall_blocks_pipeline_and_replays(self):
        lsu = make_lsu(mshrs=1)
        sm = FakeSM()
        lsu.enqueue(make_inst([0])[0])  # takes the only MSHR
        lsu.enqueue(make_inst([1])[0])  # will stall
        lsu.tick(0, sm)
        lsu.tick(1, sm)
        # one failure at the tail of cycle 0 (after the miss), one on
        # the cycle-1 replay
        assert sm.rsfails == [0, 0]
        assert lsu.stall_cycles == 2
        assert len(lsu.queue) == 1, "stalled instruction stays at head"
        # free the MSHR -> replay succeeds
        lsu.l1.fill(0)
        lsu.tick(2, sm)
        assert not lsu.queue

    def test_in_order_blocking(self):
        """A stalled head blocks a ready instruction behind it — the
        in-order property the paper's §4.5 relies on."""
        lsu = make_lsu(mshrs=1)
        sm = FakeSM()
        lsu.enqueue(make_inst([0], kernel=0)[0])
        lsu.enqueue(make_inst([1], kernel=1)[0])  # stalls (no MSHR)
        lsu.enqueue(make_inst([0], kernel=2)[0])  # would merge, but must wait
        lsu.tick(0, sm)
        lsu.tick(1, sm)
        assert len(lsu.queue) == 2
        assert all(line != 0 or result == "miss" for line, result in sm.requests[1:])

    def test_store_completes_on_expansion(self):
        lsu = make_lsu()
        sm = FakeSM()
        inst, completions = make_inst([0, 1], is_store=True)
        lsu.enqueue(inst)
        lsu.tick(0, sm)
        assert completions == [0]

    def test_load_completes_only_after_fill(self):
        lsu = make_lsu()
        sm = FakeSM()
        inst, completions = make_inst([0])
        lsu.enqueue(inst)
        lsu.tick(0, sm)
        assert not completions
        waiters = lsu.l1.fill(0)
        for req in waiters:
            req.meminst.request_done(7)
        assert completions == [7]

    def test_hit_completes_inline(self):
        lsu = make_lsu()
        sm = FakeSM()
        warm, _ = make_inst([0])
        lsu.enqueue(warm)
        lsu.tick(0, sm)
        for req in lsu.l1.fill(0):
            req.meminst.request_done(1)
        inst, completions = make_inst([0])
        lsu.enqueue(inst)
        lsu.tick(2, sm)
        assert completions == [2]

    def test_busy_accounting(self):
        lsu = make_lsu()
        sm = FakeSM()
        lsu.enqueue(make_inst([0])[0])
        lsu.tick(0, sm)
        lsu.tick(1, sm)  # idle
        assert lsu.busy_cycles == 1

    def test_bypassed_load_skips_l1_allocation(self):
        lsu = make_lsu()
        sm = FakeSM(bypass={0})
        inst, completions = make_inst([0])
        lsu.enqueue(inst)
        lsu.tick(0, sm)
        assert len(lsu.l1.mshrs) == 0, "bypassed reads never take an MSHR"
        assert lsu.l1.stats.bypasses[0] == 1
        assert lsu.l1.miss_queue, "the request still travels to L2"
        req = lsu.l1.miss_queue[0]
        assert req.bypass
        # completion is delivered directly, not via an L1 fill
        req.meminst.request_done(9)
        assert completions == [9]

    def test_bypass_still_needs_miss_queue_slot(self):
        lsu = make_lsu(miss_queue=1)
        sm = FakeSM(bypass={0})
        first, _ = make_inst([0])
        second, _ = make_inst([1])
        lsu.enqueue(first)
        lsu.enqueue(second)
        lsu.tick(0, sm)
        assert sm.rsfails, "a full miss queue stalls bypassed reads too"
