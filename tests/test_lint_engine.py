"""Engine-level linter tests: pragmas, baseline round-trip, file
collection, parse-error handling."""

import json
import os

from repro.lint import (Baseline, Finding, LintEngine, PARSE_ERROR_RULE,
                        format_github, format_json, format_text)

HERE = os.path.dirname(os.path.abspath(__file__))
FIXROOT = os.path.join(HERE, "lint_fixtures")
PRAGMA_FIXTURE = "src/repro/sim/fix_pragma.py"


# ----------------------------------------------------------------------
# pragma suppression
def test_pragma_suppresses_same_line_and_line_above():
    engine = LintEngine(FIXROOT)
    findings = engine.lint_paths([PRAGMA_FIXTURE])
    # Three deliberate violations are suppressed (same-line, line-above,
    # disable=ALL); only the wrong-rule-id one survives.
    assert len(findings) == 1
    assert findings[0].rule == "REPRO-D001"
    assert engine.suppressed == 3


def test_pragma_for_other_rule_does_not_suppress():
    engine = LintEngine(FIXROOT)
    findings = engine.lint_paths([PRAGMA_FIXTURE])
    assert "wrong_rule_id" not in findings[0].snippet  # flags the for line
    assert findings[0].line > 0


# ----------------------------------------------------------------------
# baseline
def test_baseline_round_trip(tmp_path):
    engine = LintEngine(FIXROOT)
    findings = engine.lint_paths(["src/repro/sim/fix_d001.py"])
    assert findings

    path = str(tmp_path / "baseline.json")
    Baseline.from_findings(findings).save(path)
    reloaded = Baseline.load(path)
    assert len(reloaded) == len(findings)
    assert reloaded.filter(findings) == []

    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    assert payload["version"] == 1
    assert all({"rule", "path", "snippet", "count"} <= set(e)
               for e in payload["entries"])


def test_baseline_matches_by_snippet_not_line():
    finding = Finding(rule="REPRO-D001", path="a.py", line=10, col=0,
                      message="m", snippet="for x in set(y):")
    drifted = Finding(rule="REPRO-D001", path="a.py", line=99, col=4,
                      message="m", snippet="for x in set(y):")
    baseline = Baseline.from_findings([finding])
    assert baseline.filter([drifted]) == []


def test_baseline_allows_only_recorded_count():
    finding = Finding(rule="REPRO-D001", path="a.py", line=1, col=0,
                      message="m", snippet="s")
    baseline = Baseline.from_findings([finding])
    # A second copy of the same fingerprint is NOT grandfathered.
    assert baseline.filter([finding, finding]) == [finding]


def test_missing_baseline_file_loads_empty(tmp_path):
    baseline = Baseline.load(str(tmp_path / "nope.json"))
    assert len(baseline) == 0


# ----------------------------------------------------------------------
# file collection
def test_directory_walk_skips_lint_fixtures():
    engine = LintEngine(os.path.dirname(HERE))
    files = engine.collect_files(["tests"])
    assert files
    assert not any("lint_fixtures" in f for f in files)


def test_explicit_file_bypasses_exclusion():
    engine = LintEngine(os.path.dirname(HERE))
    target = os.path.join("tests", "lint_fixtures", PRAGMA_FIXTURE)
    files = engine.collect_files([target])
    assert len(files) == 1


def test_collection_is_sorted_and_deduplicated():
    engine = LintEngine(FIXROOT)
    files = engine.collect_files(["src", "src/repro/sim/fix_d001.py"])
    assert files == sorted(files)
    assert len(files) == len(set(files))


# ----------------------------------------------------------------------
# parse errors
def test_syntax_error_yields_pseudo_finding(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def broken(:\n", encoding="utf-8")
    engine = LintEngine(str(tmp_path))
    findings = engine.lint_paths([str(bad)])
    assert len(findings) == 1
    assert findings[0].rule == PARSE_ERROR_RULE
    assert "does not parse" in findings[0].message


# ----------------------------------------------------------------------
# renderers
def _sample_findings():
    engine = LintEngine(FIXROOT)
    return engine.lint_paths(["src/repro/sim/fix_d002.py"])


def test_text_format_lists_location_and_hint():
    findings = _sample_findings()
    text = format_text(findings)
    assert f"{findings[0].path}:{findings[0].line}" in text
    assert "hint:" in text
    assert text.endswith("findings") or text.endswith("finding")
    assert "clean: no findings" in format_text([])


def test_json_format_round_trips():
    findings = _sample_findings()
    payload = json.loads(format_json(findings))
    assert payload["count"] == len(findings)
    assert [Finding.from_dict(d) for d in payload["findings"]] == findings


def test_github_format_emits_error_annotations():
    findings = _sample_findings()
    out = format_github(findings)
    lines = out.splitlines()
    assert len(lines) == len(findings)
    for line, finding in zip(lines, findings):
        assert line.startswith(f"::error file={finding.path},"
                               f"line={finding.line},")
        assert f"title={finding.rule}" in line
