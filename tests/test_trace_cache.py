"""Tests for the precompiled kernel-trace cache
(:mod:`repro.workloads.trace`): memoization, compile correctness
against live streams, disk persistence, observability counters, and
the harness wiring that versions the disk directory."""

import json
import os

import pytest

from repro.workloads import trace as ktrace
from repro.workloads.kernel import (
    CODE_BY_OP,
    OP_ALU,
    OP_SFU,
    OP_STORE,
    InstructionStream,
)
from repro.workloads.profiles import get_profile


@pytest.fixture(autouse=True)
def isolated_trace_caches():
    """Each test sees empty in-memory caches and no disk cache, and
    leaves the process-wide state the way it found it."""
    saved_dir = ktrace._DISK_DIR
    ktrace.clear_memory_cache()
    ktrace.configure_disk_cache(None)
    yield
    ktrace.clear_memory_cache()
    ktrace._DISK_DIR = saved_dir


def live_call_order(profile, warp_index, seed):
    """Drive a live stream through the SM's exact call sequence and
    record what it produced (the oracle the compiler must match)."""
    stream = InstructionStream(profile, profile.pattern_factory(),
                               warp_index, seed)
    codes = []
    lines = []
    while stream.next_op is not None:
        op = stream.pop()
        codes.append(CODE_BY_OP[op])
        if not (op is OP_ALU or op is OP_SFU):
            lines.extend(stream.memory_descriptor(op is OP_STORE).lines)
    return "".join(codes).encode("ascii"), lines


class TestMemoization:
    def test_same_profile_and_seed_share_one_trace(self):
        profile = get_profile("bp")
        assert ktrace.get_trace(profile, 0) is ktrace.get_trace(profile, 0)

    def test_seed_splits_the_cache(self):
        profile = get_profile("bp")
        assert ktrace.get_trace(profile, 0) is not ktrace.get_trace(profile, 1)

    def test_timing_only_fields_share_a_trace(self):
        """mlp shapes timing, not the stream: fingerprints must agree."""
        import dataclasses
        profile = get_profile("cd")
        doubled = dataclasses.replace(profile, mlp=profile.mlp + 1)
        assert (ktrace.profile_fingerprint(profile)
                == ktrace.profile_fingerprint(doubled))


class TestCompileCorrectness:
    @pytest.mark.parametrize("name", ["bp", "cd"])
    @pytest.mark.parametrize("warp_index", [0, 3, ktrace.CHUNK_WARPS])
    def test_arrays_match_live_call_order(self, name, warp_index):
        profile = get_profile(name)
        trace = ktrace.get_trace(profile, 0)
        assert trace is not None
        ops, lines = trace.warp_arrays(warp_index)
        assert (ops, list(lines)) == [
            (o, list(l)) for o, l in [live_call_order(profile, warp_index, 0)]
        ][0]


class TestCounters:
    def test_warp_hits_and_chunk_compiles(self):
        profile = get_profile("bp")
        trace = ktrace.get_trace(profile, 0)
        compiles0 = ktrace._COMPILES.value
        hits0 = ktrace._HITS.value
        trace.warp_arrays(0)
        trace.warp_arrays(1)  # same chunk: no second compile
        assert ktrace._COMPILES.value == compiles0 + 1
        assert ktrace._HITS.value == hits0 + 2

    def test_untraceable_pattern_counts_a_fallback(self):
        import dataclasses

        class Opaque:
            def addresses(self, *a, **kw):  # pragma: no cover - stub
                return []

        profile = dataclasses.replace(get_profile("bp"),
                                      pattern_factory=Opaque)
        before = ktrace._FALLBACKS.value
        assert ktrace.get_trace(profile, 0) is None
        assert ktrace._FALLBACKS.value == before + 1

    def test_env_opt_out(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_TRACE", "1")
        before = ktrace._FALLBACKS.value
        assert ktrace.get_trace(get_profile("bp"), 0) is None
        assert ktrace._FALLBACKS.value == before + 1

    def test_counters_live_in_the_process_registry(self):
        from repro.obs.registry import process_registry
        names = process_registry().snapshot("trace_cache")
        assert {"trace_cache.warp_hits", "trace_cache.chunk_compiles",
                "trace_cache.disk_hits", "trace_cache.disk_writes",
                "trace_cache.fallback_streams"} <= set(names)


class TestDiskCache:
    def test_round_trip_spares_the_recompile(self, tmp_path):
        assert ktrace.configure_disk_cache(str(tmp_path)) == str(tmp_path)
        profile = get_profile("bp")
        expected = ktrace.get_trace(profile, 0).warp_arrays(0)
        writes0 = ktrace._DISK_WRITES.value
        assert writes0 >= 1
        assert list(tmp_path.glob("*-s0-c0.json"))

        # A fresh process (simulated by dropping the in-memory caches)
        # must load the chunk instead of recompiling it.
        ktrace.clear_memory_cache()
        compiles0 = ktrace._COMPILES.value
        hits0 = ktrace._DISK_HITS.value
        assert ktrace.get_trace(profile, 0).warp_arrays(0) == expected
        assert ktrace._COMPILES.value == compiles0
        assert ktrace._DISK_HITS.value == hits0 + 1

    def test_corrupt_chunk_recompiles(self, tmp_path):
        ktrace.configure_disk_cache(str(tmp_path))
        profile = get_profile("bp")
        expected = ktrace.get_trace(profile, 0).warp_arrays(0)
        (path,) = tmp_path.glob("*-s0-c0.json")
        path.write_text("{not json")
        ktrace.clear_memory_cache()
        compiles0 = ktrace._COMPILES.value
        assert ktrace.get_trace(profile, 0).warp_arrays(0) == expected
        assert ktrace._COMPILES.value == compiles0 + 1

    def test_stale_format_rejected(self, tmp_path):
        ktrace.configure_disk_cache(str(tmp_path))
        profile = get_profile("bp")
        expected = ktrace.get_trace(profile, 0).warp_arrays(0)
        (path,) = tmp_path.glob("*-s0-c0.json")
        payload = json.loads(path.read_text())
        payload["format"] = -1
        path.write_text(json.dumps(payload))
        ktrace.clear_memory_cache()
        hits0 = ktrace._DISK_HITS.value
        assert ktrace.get_trace(profile, 0).warp_arrays(0) == expected
        assert ktrace._DISK_HITS.value == hits0


class TestHarnessWiring:
    def test_runner_versions_the_trace_dir(self, tmp_path):
        from repro.config import scaled_config
        from repro.harness.runner import CACHE_VERSION, ExperimentRunner

        ExperimentRunner(scaled_config(), cache_dir=str(tmp_path))
        expected = os.path.join(str(tmp_path), f"traces-v{CACHE_VERSION}")
        assert ktrace._DISK_DIR == expected
        assert os.path.isdir(expected)
