"""Unit coverage for the resilience layer building blocks.

The chaos integration suite (``test_chaos.py``) exercises whole
campaigns under injected faults; these tests pin the contracts of the
individual pieces — picklable :class:`JobError`, the fault-plan claim
protocol, journal round-trips under corruption, the serial
retry/quarantine loop, degraded-run telemetry and ledger provenance.
"""

import json
import os
import pickle

import pytest

from repro.config import scaled_config
from repro.harness import parallel as par
from repro.harness.perfbench import outcome_signature
from repro.harness.resilience import (CampaignJournal, FaultInjected,
                                      FaultPlan, FaultSpec, JobError,
                                      Quarantined, ResiliencePolicy,
                                      ResilienceReport, job_key,
                                      run_jobs_resilient)
from repro.harness.runner import ExperimentRunner, RunnerSettings
from repro.obs.ledger import artifact_from_outcome, write_artifacts
from repro.obs.telemetry import CampaignTelemetry, JobHeartbeat

SETTINGS = RunnerSettings(iso_cycles=600, curve_cycles=400,
                          concurrent_cycles=800)


def make_runner(tmp_path, sub="cache"):
    cache = tmp_path / sub
    cache.mkdir(parents=True, exist_ok=True)
    return ExperimentRunner(scaled_config(), SETTINGS, cache_dir=str(cache))


# ----------------------------------------------------------------------
# JobError: picklable, traceback-carrying worker failures
def test_job_error_pickles_with_full_traceback():
    try:
        raise ValueError("boom inside worker")
    except ValueError as exc:
        err = JobError.from_exception("mix ws st+sv", exc)

    clone = pickle.loads(pickle.dumps(err))
    assert isinstance(clone, JobError)
    assert clone.label == "mix ws st+sv"
    assert clone.original_type == "ValueError"
    # The *formatted* worker stack survives the process boundary.
    assert "boom inside worker" in str(clone)
    assert "Traceback" in clone.formatted
    assert "test_job_error_pickles_with_full_traceback" in clone.formatted


def test_job_error_escapes_pool_failure_catch():
    # run_jobs demotes pool failures matching this tuple to a serial
    # retry; a real job failure must NOT be swallowed by it.
    err = JobError("iso bp", "KeyError", "tb")
    assert not isinstance(err, (OSError, ValueError, RuntimeError,
                                ImportError))


def test_worker_wrapper_raises_job_error(tmp_path, monkeypatch):
    runner = make_runner(tmp_path)
    monkeypatch.setattr(par, "_WORKER_RUNNER", runner)
    job = par.MixJob(("definitely-not-a-kernel", "bp"))
    with pytest.raises(JobError) as info:
        par._run_job_in_worker(job)
    assert info.value.original_type == "KeyError"
    assert "unknown benchmark" in info.value.formatted
    # Label identifies the failing cell, not just the exception.
    assert info.value.label == "mix ws definitely-not-a-kernel+bp"


def test_failing_cell_raises_job_error_without_quarantine(tmp_path):
    runner = make_runner(tmp_path)
    policy = ResiliencePolicy(retries=0, quarantine=False)
    with pytest.raises(JobError) as info:
        run_jobs_resilient(runner, [par.MixJob(("nope", "bp"))],
                           policy=policy)
    assert "unknown benchmark" in str(info.value)


# ----------------------------------------------------------------------
# FaultPlan: file format and the marker-claim protocol
def test_fault_plan_round_trips_through_file(tmp_path):
    plan = FaultPlan(
        [FaultSpec(id="k1", kind="kill", match="mix *", times=2),
         FaultSpec(id="c1", kind="corrupt", match="*", path="/tmp/x*")],
        state_dir=str(tmp_path / "state"), seed=7)
    path = plan.to_file(str(tmp_path / "plan.json"))

    loaded = FaultPlan.from_file(path)
    assert loaded.seed == 7
    assert loaded.state_dir == str(tmp_path / "state")
    assert [f.id for f in loaded.faults] == ["k1", "c1"]
    assert loaded.faults[0].times == 2
    assert loaded.faults[1].path == "/tmp/x*"


def test_fault_plan_rejects_unknown_kind_and_duplicate_ids(tmp_path):
    with pytest.raises(ValueError):
        FaultSpec(id="x", kind="meteor-strike")
    with pytest.raises(ValueError):
        FaultPlan([FaultSpec(id="a", kind="kill"),
                   FaultSpec(id="a", kind="hang")],
                  state_dir=str(tmp_path))


def test_fault_plan_rejects_future_version(tmp_path):
    path = tmp_path / "plan.json"
    path.write_text(json.dumps({"version": 99, "faults": []}))
    with pytest.raises(ValueError):
        FaultPlan.from_file(str(path))


def test_fault_plan_from_env_errors_on_unreadable(tmp_path, monkeypatch):
    # A chaos run silently going fault-free would pass tests it should
    # fail, so a dangling plan path is an explicit error.
    monkeypatch.setenv("REPRO_FAULT_PLAN", str(tmp_path / "missing.json"))
    with pytest.raises(OSError):
        FaultPlan.from_env()
    monkeypatch.delenv("REPRO_FAULT_PLAN")
    assert FaultPlan.from_env() is None


def test_claim_protocol_bounds_firing_count(tmp_path):
    plan = FaultPlan([FaultSpec(id="r1", kind="raise", match="mix *",
                                times=2)],
                     state_dir=str(tmp_path / "state"))
    for _ in range(2):
        with pytest.raises(FaultInjected):
            plan.fire_pre("mix ws st+sv")
    # Budget exhausted: the third matching job runs clean.
    plan.fire_pre("mix ws st+sv")
    assert plan.fired("r1") == 2
    # Claims persist on disk, so a fresh plan object (= a respawned
    # worker) sees the budget as spent.
    again = FaultPlan.from_file(plan.to_file(str(tmp_path / "p.json")))
    again.fire_pre("mix ws st+sv")
    assert again.fired("r1") == 2


def test_fault_match_is_label_glob(tmp_path):
    plan = FaultPlan([FaultSpec(id="r1", kind="raise", match="iso *",
                                times=5)],
                     state_dir=str(tmp_path / "state"))
    plan.fire_pre("mix ws st+sv")  # no match, no fire
    with pytest.raises(FaultInjected):
        plan.fire_pre("iso bp")
    assert plan.fired("r1") == 1


def test_kill_and_hang_skipped_outside_workers(tmp_path):
    plan = FaultPlan([FaultSpec(id="k1", kind="kill", times=1),
                      FaultSpec(id="h1", kind="hang", times=1,
                                seconds=3600.0)],
                     state_dir=str(tmp_path / "state"))
    # In-process (serial fallback) the parent must never SIGKILL or
    # stall itself; the claim stays unspent for a real worker.
    plan.fire_pre("mix ws st+sv", in_worker=False)
    assert plan.fired("k1") == 0
    assert plan.fired("h1") == 0


def test_corrupt_fault_garbles_first_matching_file(tmp_path):
    victim = tmp_path / "data" / "a.json"
    victim.parent.mkdir()
    victim.write_text(json.dumps({"ok": True}))
    plan = FaultPlan([FaultSpec(id="c1", kind="corrupt", times=1,
                                path=str(tmp_path / "data" / "*.json"))],
                     state_dir=str(tmp_path / "state"))
    plan.fire_post("mix ws st+sv")
    assert victim.read_text() == "{corrupt"
    # times=1: a second firing leaves other files alone.
    other = tmp_path / "data" / "b.json"
    other.write_text("{}")
    plan.fire_post("mix ws st+sv")
    assert other.read_text() == "{}"


# ----------------------------------------------------------------------
# the checkpoint journal
def test_journal_round_trips_results(tmp_path):
    journal = CampaignJournal(str(tmp_path / "j" / "campaign.jsonl"))
    job = par.IsoJob("bp")
    journal.record_done(job, {"metric": 1.25})
    done, quarantined = journal.load()
    assert done == {job_key(job): {"metric": 1.25}}
    assert quarantined == {}


def test_journal_quarantine_superseded_by_later_done(tmp_path):
    journal = CampaignJournal(str(tmp_path / "campaign.jsonl"))
    job = par.MixJob(("st", "sv"))
    journal.record_quarantine(job, ["worker-crash", "worker-crash"])
    done, quarantined = journal.load()
    assert quarantined == {job_key(job): ["worker-crash", "worker-crash"]}
    # The resumed run finished the cell: done wins.
    journal.record_done(job, "result")
    done, quarantined = journal.load()
    assert done == {job_key(job): "result"}
    assert quarantined == {}


def test_journal_tolerates_torn_and_corrupt_lines(tmp_path):
    journal = CampaignJournal(str(tmp_path / "campaign.jsonl"))
    good, bad = par.IsoJob("bp"), par.IsoJob("st")
    journal.record_done(good, "good-result")
    journal.record_done(bad, "bad-result")
    lines = open(journal.path).read().splitlines()
    # Garble the second entry's blob and tear a trailing line — a crash
    # mid-append can leave exactly this shape on disk.
    lines[1] = lines[1].replace('"blob": "', '"blob": "XX')
    with open(journal.path, "w") as fh:
        fh.write(lines[0] + "\n" + lines[1] + "\n")
        fh.write("not json at all\n")
        fh.write(lines[0][:40])  # torn tail, no newline
    done, _ = journal.load()
    assert done == {job_key(good): "good-result"}


def test_journal_rejects_tampered_blob_by_fingerprint(tmp_path):
    journal = CampaignJournal(str(tmp_path / "campaign.jsonl"))
    job = par.IsoJob("bp")
    journal.record_done(job, "original")
    entry = json.loads(open(journal.path).read())
    import base64
    entry["blob"] = base64.b64encode(
        pickle.dumps("tampered")).decode("ascii")  # sha no longer matches
    with open(journal.path, "w") as fh:
        fh.write(json.dumps(entry) + "\n")
    done, _ = journal.load()
    assert done == {}


def test_journal_skips_other_versions(tmp_path):
    journal = CampaignJournal(str(tmp_path / "campaign.jsonl"))
    job = par.IsoJob("bp")
    journal.record_done(job, "v1-result")
    entry = json.loads(open(journal.path).read())
    entry["v"] = 99
    with open(journal.path, "w") as fh:
        fh.write(json.dumps(entry) + "\n")
    done, _ = journal.load()
    assert done == {}


def test_journal_reset_drops_previous_campaign(tmp_path):
    journal = CampaignJournal(str(tmp_path / "campaign.jsonl"))
    journal.record_done(par.IsoJob("bp"), "stale")
    journal.reset()
    assert journal.load() == ({}, {})
    journal.reset()  # idempotent on a missing file


# ----------------------------------------------------------------------
# policy arithmetic
def test_policy_backoff_is_exponential():
    policy = ResiliencePolicy(retries=3, backoff_s=0.1, backoff_factor=2.0)
    assert policy.max_attempts == 4
    assert policy.backoff_after(1) == pytest.approx(0.1)
    assert policy.backoff_after(2) == pytest.approx(0.2)
    assert policy.backoff_after(3) == pytest.approx(0.4)
    assert ResiliencePolicy(retries=0).max_attempts == 1


# ----------------------------------------------------------------------
# serial resilient execution: retry, quarantine, report
def test_serial_retry_recovers_and_stays_bit_identical(tmp_path):
    baseline = make_runner(tmp_path, "baseline")
    want = par.execute_job(baseline, par.MixJob(("st", "sv")))

    plan = FaultPlan([FaultSpec(id="r1", kind="raise",
                                match="mix ws st+sv", times=1)],
                     state_dir=str(tmp_path / "state"))
    plan_path = plan.to_file(str(tmp_path / "plan.json"))

    runner = make_runner(tmp_path, "faulted")
    policy = ResiliencePolicy(retries=2, backoff_s=0.01)
    results, report = run_jobs_resilient(
        runner, [par.MixJob(("st", "sv"))], policy=policy, workers=1,
        fault_plan=plan_path)
    assert outcome_signature(results[0]) == outcome_signature(want)
    assert report.retries == 1
    cell = report.cells[job_key(par.MixJob(("st", "sv")))]
    assert cell.attempts == 2
    assert cell.faults == ["error:FaultInjected"]
    assert not cell.quarantined


def test_serial_quarantine_after_budget(tmp_path):
    plan = FaultPlan([FaultSpec(id="r1", kind="raise", match="mix *",
                                times=99)],
                     state_dir=str(tmp_path / "state"))
    plan_path = plan.to_file(str(tmp_path / "plan.json"))
    runner = make_runner(tmp_path)
    results, report = run_jobs_resilient(
        runner, [par.MixJob(("st", "sv")), par.IsoJob("bp")],
        policy=ResiliencePolicy(retries=1, backoff_s=0.01), workers=1,
        fault_plan=plan_path)
    # The poisoned mix is quarantined; the iso cell still completes.
    assert isinstance(results[0], Quarantined)
    assert results[0].label == "mix ws st+sv"
    assert "error:FaultInjected" in results[0].faults
    assert not isinstance(results[1], Quarantined)
    assert report.quarantined == ["mix ws st+sv"]


def test_duplicate_jobs_execute_once(tmp_path):
    runner = make_runner(tmp_path)
    job = par.IsoJob("bp")
    results, report = run_jobs_resilient(runner, [job, job, job],
                                         workers=1)
    assert len(results) == 3
    assert results[0] is results[1] is results[2]
    assert report.cells[job_key(job)].attempts == 1


def test_resume_replays_journal_and_runs_remainder(tmp_path):
    runner = make_runner(tmp_path)
    journal = CampaignJournal(str(tmp_path / "campaign.jsonl"))
    jobs = [par.IsoJob("bp"), par.IsoJob("st")]
    first, _ = run_jobs_resilient(runner, [jobs[0]], workers=1,
                                  journal=journal)

    fresh = make_runner(tmp_path, "fresh")
    results, report = run_jobs_resilient(fresh, jobs, workers=1,
                                         journal=journal, resume=True)
    # The replayed checkpoint is the pickled original, field for field.
    assert results[0] == first[0]
    assert report.resumed == 1
    assert report.cells[job_key(jobs[0])].resumed
    assert not report.cells[job_key(jobs[1])].resumed


# ----------------------------------------------------------------------
# degraded-run telemetry
def beat(event="done", attempt=1, fault=None, cache_hit=False, index=1):
    return JobHeartbeat(index=index, total=4, label="mix ws st+sv",
                        duration_s=0.5, sim_cycles=800, attempt=attempt,
                        event=event, fault=fault, cache_hit=cache_hit)


def test_telemetry_counts_degradation_events():
    tele = CampaignTelemetry(stream=open(os.devnull, "w"), quiet=True)
    tele(beat(event="retry", fault="worker-crash"))
    tele(beat(event="done", attempt=2))
    tele(beat(event="resumed", cache_hit=True, index=2))
    tele(beat(event="quarantined", attempt=3, fault="timeout", index=3))
    assert tele.retries == 1
    # Retries are churn, not progress: only terminal events count.
    assert tele.jobs_done == 3
    assert tele.resumed == 1
    assert tele.quarantined == 1
    summary = tele.summary()
    assert "1 resumed" in summary
    assert "1 retries" in summary
    assert "1 quarantined" in summary


def test_telemetry_formats_degradation_beats():
    tele = CampaignTelemetry(stream=open(os.devnull, "w"), quiet=True)
    retry = tele.format_beat(beat(event="retry", attempt=1,
                                  fault="worker-crash"))
    assert "!retry: attempt 1 failed (worker-crash)" in retry
    quarantine = tele.format_beat(beat(event="quarantined", attempt=3,
                                       fault="timeout"))
    assert "!quarantined after 3 attempts (timeout)" in quarantine
    resumed = tele.format_beat(beat(event="resumed", cache_hit=True))
    assert "(journal)" in resumed


# ----------------------------------------------------------------------
# ledger provenance
def run_outcome(tmp_path):
    runner = make_runner(tmp_path)
    from repro.workloads.mixes import WorkloadMix
    from repro.workloads.profiles import get_profile
    mix = WorkloadMix((get_profile("st"), get_profile("sv")))
    return runner, runner.run_mix(mix, "ws")


def test_artifact_provenance_only_when_degraded(tmp_path):
    runner, outcome = run_outcome(tmp_path)
    clean = artifact_from_outcome(outcome, runner.config, runner.settings)
    # Fault-free artifacts stay byte-identical to pre-resilience runs:
    # no provenance key unless degradation happened.
    assert "provenance" not in clean
    degraded = artifact_from_outcome(
        outcome, runner.config, runner.settings,
        provenance={"attempts": 2, "resumed": False,
                    "faults": ["worker-crash"]})
    assert degraded["provenance"]["attempts"] == 2


def test_ledger_index_carries_campaign_block(tmp_path):
    runner, outcome = run_outcome(tmp_path)
    art = artifact_from_outcome(outcome, runner.config, runner.settings)
    out = tmp_path / "artifacts"
    write_artifacts(str(out), [art])
    index = json.loads((out / "ledger.json").read_text())
    assert "campaign" not in index
    write_artifacts(str(out), [art],
                    campaign={"retries": 2, "quarantined": [],
                              "resumed": 1, "journal": "campaign-x.jsonl"})
    index = json.loads((out / "ledger.json").read_text())
    assert index["campaign"]["retries"] == 2
    assert index["campaign"]["journal"] == "campaign-x.jsonl"


def test_report_summary_reads_naturally():
    report = ResilienceReport()
    assert report.summary() == "resilience: 0 cells"
    cell = report.cell(par.IsoJob("bp"))
    cell.attempts = 3
    cell.quarantined = True
    assert report.summary() == ("resilience: 1 cells, 2 retries, "
                                "1 quarantined (iso bp)")
