"""Unit tests for the DRAM channel model (FR-FCFS, row locality)."""

import pytest

from repro.config import scaled_config
from repro.mem.dram import DRAMChannel, DRAMModel


def make_model(**overrides):
    cfg = scaled_config().replace(**overrides)
    return DRAMModel(cfg, queue_capacity=8)


class TestChannelMapping:
    def test_row_granularity_interleaving(self):
        model = make_model()
        row_lines = model.config.dram_row_lines
        # All lines of one row map to the same channel.
        ch = {model.channel_for(line) for line in range(row_lines)}
        assert len(ch) == 1
        # Adjacent rows map to different channels.
        assert model.channel_for(0) is not model.channel_for(row_lines)

    def test_row_of(self):
        model = make_model()
        rl = model.config.dram_row_lines
        assert model.row_of(0) == 0
        assert model.row_of(rl) == 1


class TestFRFCFS:
    def collect(self, model, until_cycle):
        done = []
        for cycle in range(until_cycle):
            model.tick(cycle, lambda payload, when: done.append((payload, when)))
        return done

    def test_row_hits_are_faster(self):
        cfg = scaled_config()
        fast = DRAMChannel(cfg)
        fast.enqueue(row=5, is_write=False, payload="a")
        fast.enqueue(row=5, is_write=False, payload="b")
        fast.open_row = 5
        hit_cycles = cfg.dram_row_hit_cycles
        fast.tick(0, lambda p, w: None)
        assert fast.busy_until == hit_cycles
        assert fast.row_hits == 1
        fast.tick(hit_cycles, lambda p, w: None)
        assert fast.busy_until == 2 * hit_cycles
        assert fast.row_hits == 2

    def test_row_miss_opens_row(self):
        cfg = scaled_config()
        chan = DRAMChannel(cfg)
        chan.enqueue(row=7, is_write=False, payload="a")
        chan.tick(0, lambda p, w: None)
        assert chan.open_row == 7
        assert chan.busy_until == cfg.dram_row_miss_cycles

    def test_reorders_for_row_hit_within_window(self):
        cfg = scaled_config()
        chan = DRAMChannel(cfg)
        chan.open_row = 9
        chan.enqueue(row=3, is_write=False, payload="other")
        chan.enqueue(row=9, is_write=False, payload="hit")
        order = []
        chan.tick(0, lambda p, w: order.append(p))
        assert order[0] == "hit", "FR-FCFS must service the open-row request first"

    def test_completion_includes_access_latency(self):
        cfg = scaled_config()
        chan = DRAMChannel(cfg)
        chan.enqueue(row=1, is_write=False, payload="a")
        done = []
        chan.tick(0, lambda p, w: done.append(w))
        assert done[0] == cfg.dram_row_miss_cycles + cfg.dram_latency

    def test_writes_produce_no_completion(self):
        chan = DRAMChannel(scaled_config())
        chan.enqueue(row=1, is_write=True, payload=None)
        done = []
        chan.tick(0, lambda p, w: done.append(w))
        assert not done
        assert chan.serviced == 1


class TestCapacity:
    def test_queue_capacity_enforced(self):
        chan = DRAMChannel(scaled_config(), capacity=2)
        chan.enqueue(1, False, "a")
        chan.enqueue(2, False, "b")
        assert chan.full
        with pytest.raises(RuntimeError):
            chan.enqueue(3, False, "c")

    def test_best_effort_writes_dropped_when_full(self):
        model = DRAMModel(scaled_config(), queue_capacity=1)
        line = 0
        assert model.enqueue_write(line)
        assert not model.enqueue_write(line)
        assert model.dropped_writes == 1

    def test_can_accept_tracks_target_channel(self):
        model = DRAMModel(scaled_config(), queue_capacity=1)
        model.enqueue_read(0, "a")
        assert not model.can_accept(0)
        other = model.config.dram_row_lines  # next row -> next channel
        assert model.can_accept(other)


def test_row_hit_rate_statistic():
    model = DRAMModel(scaled_config(), queue_capacity=8)
    for i in range(4):
        model.enqueue_read(i, i)  # same row -> same channel, 3 hits after open
    for cycle in range(100):
        model.tick(cycle, lambda p, w: None)
    assert model.total_serviced() == 4
    assert model.row_hit_rate() == pytest.approx(3 / 4)
