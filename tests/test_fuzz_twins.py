"""Property-based fuzzing of the pooled memory-path hot structures.

The hand-rolled ``random`` fuzz in ``test_request_pool.py`` walks one
seeded trajectory per twin; this suite lets hypothesis search the
operation space for sequences that split an array-backed component
from its object twin — the shrunk counterexample is then a minimal
reproduction, not a 4000-step haystack.

Rides under the ``fuzz`` marker (excluded from tier-1 via the default
``-m "not fuzz"`` addopts; CI's chaos-smoke job and ``pytest -m fuzz``
run it explicitly).  ``derandomize=True`` keeps the suite
deterministic in CI — no flaky example databases, no fresh seeds.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.config import CacheConfig, scaled_config  # noqa: E402
from repro.mem.cache import SetAssocCache  # noqa: E402
from repro.mem.dram import DRAMChannel, RingDRAMChannel  # noqa: E402
from repro.mem.mshr import MSHRFile  # noqa: E402
from repro.mem.pool import (  # noqa: E402
    ArrayMSHRFile,
    ArrayTagStore,
    RequestPool,
)

pytestmark = pytest.mark.fuzz

FUZZ = settings(derandomize=True, max_examples=50, deadline=None)

TAG_CONFIG = CacheConfig(size_bytes=4096, line_size=128, assoc=4,
                         mshrs=8, miss_queue=8)


# ----------------------------------------------------------------------
# RequestPool: model-based liveness + twin determinism
@FUZZ
@given(ops=st.lists(st.integers(min_value=0, max_value=99),
                    min_size=1, max_size=300))
def test_pool_alloc_free_matches_set_model(ops):
    pool = RequestPool(capacity=4)
    twin = RequestPool(capacity=4)
    live = {}
    for step, op in enumerate(ops):
        if live and op < 45:  # free a live slot, deterministically
            slot = sorted(live)[op % len(live)]
            pool.free(slot)
            twin.free(slot)
            del live[slot]
        else:
            slot = pool.alloc(line=step, kernel=op % 3, sm_id=0,
                              is_write=bool(op % 2), meminst=None,
                              issued_cycle=step, bypass=False)
            # Determinism: an identically-driven pool hands out the
            # identical slot (free-list order is part of the contract).
            assert twin.alloc(step, op % 3, 0, bool(op % 2), None,
                              step, False) == slot
            assert slot not in live, "alloc returned a live slot"
            assert pool.live[slot]
            live[slot] = step
        assert pool.live_count() == len(live)
        assert (pool.capacity, pool.grows) == (twin.capacity, twin.grows)
    # Surviving slots still carry the fields they were allocated with.
    for slot, step in live.items():
        assert pool.line[slot] == step
        assert pool.issued_cycle[slot] == step


# ----------------------------------------------------------------------
# ArrayTagStore vs SetAssocCache
def _tag_state(obj):
    return [(ln.tag, ln.valid, ln.reserved, ln.dirty, ln.kernel,
             ln.last_use)
            for target_set in obj._sets for ln in target_set]


def _array_state(arr):
    return [(arr.tag[i], arr.valid[i], arr.reserved[i], arr.dirty[i],
             arr.kernel[i], arr.last_use[i])
            for i in range(arr.num_sets * arr.assoc)]


tag_ops = st.lists(st.tuples(st.integers(0, 99),      # op selector
                             st.integers(0, 127),     # line
                             st.integers(0, 1)),      # kernel
                   min_size=1, max_size=300)


@FUZZ
@given(ops=tag_ops, partitioned=st.booleans())
def test_tag_store_twin_equivalence(ops, partitioned):
    obj = SetAssocCache(TAG_CONFIG)
    arr = ArrayTagStore(TAG_CONFIG)
    obj.partition = arr.partition = {0: 1, 1: 3} if partitioned else None
    for op, line, kernel in ops:
        if op < 40:
            found = obj.lookup(line)
            way = arr.find(line)
            assert (found is not None) == (way >= 0)
            if way >= 0 and arr.valid[way]:
                arr.touch(way)
        elif op < 70:
            # Reserve only after a miss: the pool's documented contract
            # (duplicate resident tags would break the _where index).
            resident = arr.find(line) >= 0
            assert (obj.probe(line) is not None) == resident
            if not resident:
                assert obj.reserve(line, kernel) == arr.reserve(line,
                                                                kernel)
        elif op < 90:
            # Fills target absent lines or outstanding reservations.
            way = arr.find(line)
            if way < 0 or arr.reserved[way]:
                obj.fill(line)
                arr.fill(line)
        else:
            obj.invalidate(line)
            arr.invalidate(line)
        assert _tag_state(obj) == _array_state(arr)
    assert obj.occupancy_by_kernel() == arr.occupancy_by_kernel()


# ----------------------------------------------------------------------
# ArrayMSHRFile vs MSHRFile
mshr_ops = st.lists(st.tuples(st.integers(0, 99),     # op selector
                              st.integers(0, 31)),    # line
                    min_size=1, max_size=300)


@FUZZ
@given(ops=mshr_ops)
def test_mshr_file_twin_equivalence(ops):
    obj = MSHRFile(capacity=6, merge_limit=3)
    arr = ArrayMSHRFile(capacity=6, merge_limit=3)
    outstanding = []
    for waiter, (op, line) in enumerate(ops):
        if outstanding and op < 35:
            line = outstanding.pop(op % len(outstanding))
            assert obj.release(line).waiters == arr.release(line)
        else:
            assert obj.can_merge(line) == arr.can_merge(line)
            if obj.try_merge(line, waiter):
                assert line in outstanding
                assert arr.try_merge(line, waiter)
            elif line not in outstanding and obj.can_allocate():
                assert not arr.try_merge(line, waiter)
                obj.allocate(line, waiter % 2, waiter)
                arr.allocate(line, waiter % 2, waiter)
                outstanding.append(line)
        assert len(obj) == len(arr)
        assert obj.full == arr.full
        assert obj.peak_used == arr.peak_used
        assert obj.occupancy_by_kernel() == arr.occupancy_by_kernel()


# ----------------------------------------------------------------------
# RingDRAMChannel vs DRAMChannel
dram_ops = st.lists(st.tuples(st.booleans(),          # try to enqueue?
                              st.integers(0, 7),      # row
                              st.integers(0, 99)),    # write selector
                    min_size=1, max_size=300)


@FUZZ
@given(ops=dram_ops)
def test_ring_channel_twin_equivalence(ops):
    config = scaled_config()
    obj = DRAMChannel(config, capacity=16)
    ring = RingDRAMChannel(config, capacity=16)
    obj_done, ring_done = [], []
    for cycle2, (push, row, wsel) in enumerate(ops):
        cycle = cycle2 * 2
        if push and not obj.full:
            is_write = wsel < 30
            payload = None if is_write else cycle
            obj.enqueue(row, is_write, payload)
            ring.ring_push(row, is_write, payload)
        assert obj.full == ring.full
        obj.tick(cycle, lambda p, t: obj_done.append((p, t)))
        ring.tick(cycle, lambda p, t: ring_done.append((p, t)))
        assert obj_done == ring_done
        assert obj.busy_until == ring.busy_until
        assert obj.open_row == ring.open_row
        assert obj.serviced == ring.serviced
        assert obj.row_hits == ring.row_hits
        assert list(obj.queue) == ring.queue
