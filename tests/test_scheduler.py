"""Unit tests for the GTO and LRR warp schedulers."""

from repro.sim.scheduler import WarpScheduler
from repro.sim.warp import ThreadBlock, Warp
from repro.workloads.address import StreamPattern
from repro.workloads.kernel import OP_ALU, InstructionStream, KernelProfile


def make_warp(age, kernel=0, cinst=5, iters=10, seed=0):
    profile = KernelProfile(
        name=f"k{kernel}", full_name="t", suite="u", kind="C",
        cinst_per_minst=cinst, reqs_per_minst=1, write_frac=0.0,
        threads_per_tb=32, regs_per_thread=8,
        pattern_factory=StreamPattern, iters_per_warp=iters,
    )
    tb = ThreadBlock(0, kernel, profile)
    stream = InstructionStream(profile, StreamPattern(), age, seed=seed)
    return Warp(age, kernel, tb, stream, age=age, mlp=2)


def always(*_args):
    return True


class TestGTO:
    def test_prefers_greedy_warp(self):
        sched = WarpScheduler(0, "gto")
        w0, w1 = make_warp(0), make_warp(1)
        sched.add_warp(w0)
        sched.add_warp(w1)
        sched.note_issued(w1)
        sel = sched.select(0, always, always)
        assert sel.warp is w1, "GTO keeps issuing the greedy warp"

    def test_falls_back_to_oldest(self):
        sched = WarpScheduler(0, "gto")
        w0, w1, w2 = make_warp(0), make_warp(1), make_warp(2)
        for w in (w0, w1, w2):
            sched.add_warp(w)
        sched.note_issued(w2)
        w2.ready_at = 100  # greedy warp blocked
        sel = sched.select(0, always, always)
        assert sel.warp is w0, "oldest ready warp comes next"

    def test_skips_gated_warps(self):
        sched = WarpScheduler(0, "gto")
        w0, w1 = make_warp(0, kernel=0), make_warp(1, kernel=1)
        sched.add_warp(w0)
        sched.add_warp(w1)
        sel = sched.select(0, always, always,
                           warp_gated=lambda w: w.kernel_slot == 1)
        assert sel.warp is w1

    def test_removed_greedy_warp_forgotten(self):
        sched = WarpScheduler(0, "gto")
        w0, w1 = make_warp(0), make_warp(1)
        sched.add_warp(w0)
        sched.add_warp(w1)
        sched.note_issued(w1)
        sched.remove_warp(w1)
        sel = sched.select(0, always, always)
        assert sel.warp is w0


class TestLRR:
    def test_rotates_between_ready_warps(self):
        sched = WarpScheduler(0, "lrr")
        warps = [make_warp(i) for i in range(3)]
        for w in warps:
            sched.add_warp(w)
        picked = [sched.select(0, always, always).warp.age for _ in range(3)]
        assert sorted(picked) == [0, 1, 2], "LRR visits every warp"


class TestSelection:
    def test_mem_candidate_carries_compute_fallback(self):
        sched = WarpScheduler(0, "gto")
        # w0's next op is a load (cinst=0); w1 has compute available.
        w0 = make_warp(0, cinst=0)
        w1 = make_warp(1, cinst=5)
        sched.add_warp(w0)
        sched.add_warp(w1)
        sel = sched.select(0, always, always)
        assert sel.is_mem and sel.warp is w0
        assert sel.fallback is w1
        assert sel.fallback_op == OP_ALU

    def test_mem_gated_warp_skipped_for_compute(self):
        sched = WarpScheduler(0, "gto")
        w0 = make_warp(0, cinst=0)   # wants to issue a load
        w1 = make_warp(1, cinst=5)   # compute
        sched.add_warp(w0)
        sched.add_warp(w1)
        sel = sched.select(0, lambda w, op: False, always)
        assert not sel.is_mem
        assert sel.warp is w1

    def test_none_when_nothing_ready(self):
        sched = WarpScheduler(0, "gto")
        w0 = make_warp(0)
        w0.ready_at = 10
        sched.add_warp(w0)
        assert sched.select(0, always, always) is None

    def test_compute_port_gate_respected(self):
        sched = WarpScheduler(0, "gto")
        w0 = make_warp(0, cinst=5)
        sched.add_warp(w0)
        assert sched.select(0, always, lambda op: False) is None
