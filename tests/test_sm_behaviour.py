"""Focused SM-level behaviour tests: SMK quota gating, BMI arbitration
effects, MIL gating, and bypass — observed through short live runs."""


from repro.config import scaled_config
from repro.core.arbiter import SchemeConfig
from repro.sim.engine import GPU, make_launches
from repro.workloads.profiles import get_profile


def run(profiles, limits, scheme, cycles=3000, cfg=None):
    cfg = cfg or scaled_config()
    gpu = GPU(cfg, make_launches(profiles, limits, cfg), scheme)
    return gpu, gpu.run(cycles)


class TestSMKGateLive:
    def test_quota_ratio_steers_progress(self):
        """Progress ratios must follow the warp-instruction quotas."""
        fast, slow = get_profile("dc"), get_profile("ks")
        gpu, favour_fast = run([fast, slow], [4, 2],
                               SchemeConfig(smk_quotas=(60, 40)))
        _, favour_slow = run([fast, slow], [4, 2],
                             SchemeConfig(smk_quotas=(20, 80)))

        def ratio(result):
            return (result.kernels[0].warp_insts
                    / max(1, result.kernels[1].warp_insts))

        assert ratio(favour_fast) > 2 * ratio(favour_slow)
        assert gpu.sms[0].bundle.smk_gate.epochs > 0

    def test_single_kernel_unharmed_by_gate(self):
        p = get_profile("dc")
        _, gated = run([p], [4], SchemeConfig(smk_quotas=(100,)))
        _, free = run([p], [4], SchemeConfig())
        assert gated.ipc(0) > 0.8 * free.ipc(0)


class TestMILGateLive:
    def test_limit_one_caps_inflight(self):
        p = get_profile("ks")
        gpu, _ = run([p], [3], SchemeConfig(mil="smil", smil_limits=(1,)))
        # with a cap of 1, the per-SM inflight counter never exceeds it
        for sm in gpu.sms:
            assert sm.kstate[0].inflight_minsts <= 1

    def test_limit_reduces_memory_traffic(self):
        p = get_profile("sv")
        _, free = run([p], [4], SchemeConfig())
        _, capped = run([p], [4], SchemeConfig(mil="smil", smil_limits=(1,)))
        assert capped.kernels[0].mem_requests < free.kernels[0].mem_requests

    def test_dmil_learns_limits_for_memory_kernel(self):
        p = get_profile("ks")
        gpu, _ = run([p], [3], SchemeConfig(mil="dmil"), cycles=6000)
        limits = [lim for sm in gpu.sms for lim in sm.bundle.limiter.limits()]
        assert any(lim is not None for lim in limits), (
            "ks must trip the MILG within the window")


class TestBypassLive:
    def test_bypassed_kernel_takes_no_l1_lines(self):
        bp, ks = get_profile("bp"), get_profile("ks")
        gpu, result = run([bp, ks], [3, 1],
                          SchemeConfig(l1d_bypass=(False, True)))
        for l1 in gpu.memory.l1s:
            occ = l1.tags.occupancy_by_kernel()
            assert occ.get(1, 0) == 0, "bypassed kernel must not occupy L1"
        assert result.l1d_accesses[1] == 0
        assert result.kernels[1].mem_requests > 0


class TestSFUPort:
    def test_sfu_inst_rate_bounded_by_single_port(self):
        cfg = scaled_config()
        p = get_profile("cp")  # sfu_frac 0.35
        _, result = run([p], [8], SchemeConfig(), cycles=4000, cfg=cfg)
        max_sfu = result.cycles * cfg.sfu_units * cfg.num_sms
        assert result.kernels[0].sfu_insts <= max_sfu


class TestSchedulerPolicyLive:
    def test_lrr_and_gto_both_progress(self):
        p = get_profile("bp")
        for policy in ("gto", "lrr"):
            cfg = scaled_config(scheduler_policy=policy)
            _, result = run([p], [3], SchemeConfig(), cfg=cfg)
            assert result.ipc(0) > 0.5

    def test_policies_differ_in_issue_pattern(self):
        p = get_profile("sv")
        a = run([p], [4], SchemeConfig(),
                cfg=scaled_config(scheduler_policy="gto"))[1]
        b = run([p], [4], SchemeConfig(),
                cfg=scaled_config(scheduler_policy="lrr"))[1]
        assert a.kernels[0].warp_insts != b.kernels[0].warp_insts
