"""Unit tests for the crossbar interconnect bandwidth model."""

from repro.config import scaled_config
from repro.mem.interconnect import FLIT_BYTES, Interconnect


class TestInterconnect:
    def test_line_flits(self):
        cfg = scaled_config()
        assert Interconnect.line_flits(cfg) == cfg.l1d.line_size // FLIT_BYTES

    def test_request_and_response_budgets_are_independent(self):
        cfg = scaled_config()
        icnt = Interconnect(cfg)
        # drain the request side completely
        while icnt.try_send_request(1):
            pass
        assert not icnt.try_send_request(1)
        assert icnt.try_send_response(1), "response tokens unaffected"

    def test_tokens_replenish_each_cycle(self):
        cfg = scaled_config()
        icnt = Interconnect(cfg)
        while icnt.try_send_request(1):
            pass
        icnt.begin_cycle()
        assert icnt.try_send_request(1)

    def test_burst_cap_bounds_accumulation(self):
        cfg = scaled_config()
        icnt = Interconnect(cfg)
        for _ in range(100):
            icnt.begin_cycle()
        sent = 0
        while icnt.try_send_request(1):
            sent += 1
        assert sent <= icnt.burst_cap

    def test_large_transfer_possible_even_at_low_rate(self):
        """A full line transfer must eventually go through even when
        the per-cycle rate is below the line cost."""
        cfg = scaled_config(num_sms=1).replace(icnt_flits_per_cycle=1)
        icnt = Interconnect(cfg)
        flits = Interconnect.line_flits(cfg)
        while icnt.try_send_response(flits):
            pass
        for _ in range(flits):
            icnt.begin_cycle()
        assert icnt.try_send_response(flits)

    def test_flit_accounting(self):
        icnt = Interconnect(scaled_config())
        icnt.try_send_request(3)
        icnt.try_send_response(4)
        assert icnt.req_flits_sent == 3
        assert icnt.rsp_flits_sent == 4
