"""Unit tests for repro.config."""

import dataclasses

import pytest

from repro.config import MAXWELL_CONFIG, CacheConfig, GPUConfig, scaled_config


class TestCacheConfig:
    def test_table1_l1d_geometry(self):
        l1d = MAXWELL_CONFIG.l1d
        assert l1d.size_bytes == 24 * 1024
        assert l1d.line_size == 128
        assert l1d.assoc == 6
        assert l1d.num_lines == 192
        assert l1d.num_sets == 32
        assert l1d.mshrs == 128

    def test_table1_l2_geometry(self):
        l2 = MAXWELL_CONFIG.l2
        assert l2.size_bytes == 2048 * 1024
        assert l2.assoc == 16
        assert l2.write_allocate

    def test_rejects_size_not_multiple_of_line(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, line_size=128, assoc=4,
                        mshrs=8, miss_queue=4)

    def test_rejects_lines_not_multiple_of_assoc(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=128 * 6, line_size=128, assoc=4,
                        mshrs=8, miss_queue=4)

    def test_rejects_nonpositive_resources(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1024, line_size=128, assoc=2,
                        mshrs=0, miss_queue=4)


class TestGPUConfig:
    def test_table1_top_level(self):
        cfg = MAXWELL_CONFIG
        assert cfg.num_sms == 16
        assert cfg.warp_size == 32
        assert cfg.schedulers_per_sm == 4
        assert cfg.max_threads_per_sm == 3072
        assert cfg.max_warps_per_sm == 96
        assert cfg.max_tbs_per_sm == 16
        assert cfg.dram_channels == 16

    def test_rejects_unknown_scheduler(self):
        with pytest.raises(ValueError):
            GPUConfig(scheduler_policy="fifo")

    def test_rejects_inconsistent_warp_thread_limits(self):
        with pytest.raises(ValueError):
            GPUConfig(max_warps_per_sm=8, max_threads_per_sm=3072)

    def test_replace_returns_modified_copy(self):
        cfg = MAXWELL_CONFIG.replace(num_sms=4)
        assert cfg.num_sms == 4
        assert MAXWELL_CONFIG.num_sms == 16

    def test_warps_per_scheduler(self):
        assert MAXWELL_CONFIG.warps_per_scheduler == 24


class TestScaledConfig:
    def test_defaults_are_consistent(self):
        cfg = scaled_config()
        assert cfg.num_sms == 2
        assert cfg.max_warps_per_sm * cfg.warp_size >= cfg.max_threads_per_sm
        assert cfg.l1d.num_sets > 0

    def test_l1d_capacity_knob(self):
        small = scaled_config(l1d_kb=12)
        big = scaled_config(l1d_kb=24)
        assert big.l1d.num_lines == 2 * small.l1d.num_lines

    def test_scheduler_policy_knob(self):
        assert scaled_config(scheduler_policy="lrr").scheduler_policy == "lrr"

    def test_bandwidth_scales_with_sms(self):
        two = scaled_config(num_sms=2)
        four = scaled_config(num_sms=4)
        assert four.dram_channels == 2 * two.dram_channels
        assert four.icnt_flits_per_cycle == 2 * two.icnt_flits_per_cycle

    def test_config_is_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            scaled_config().num_sms = 3
