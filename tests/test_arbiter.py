"""Unit tests for SchemeConfig composition and the SMK quota gate."""

import pytest

from repro.config import scaled_config
from repro.core.arbiter import SchemeConfig, SMKQuotaGate
from repro.core.bmi import QuotaBMI, RoundRobinBMI, UnmanagedIssue
from repro.core.mil import DynamicLimiter, NoLimit, StaticLimiter
from repro.mem.cache import SetAssocCache


def build(scheme, num_kernels=2):
    cfg = scaled_config()
    tags = SetAssocCache(cfg.l1d)
    return scheme.build(num_kernels, cfg, tags)


class TestSchemeConfig:
    def test_defaults_are_baseline(self):
        bundle = build(SchemeConfig())
        assert isinstance(bundle.mem_policy, UnmanagedIssue)
        assert isinstance(bundle.limiter, NoLimit)
        assert bundle.ucp is None
        assert bundle.smk_gate is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SchemeConfig(bmi="bogus")
        with pytest.raises(ValueError):
            SchemeConfig(mil="bogus")
        with pytest.raises(ValueError):
            SchemeConfig(mil="smil")  # needs limits

    def test_builds_requested_components(self):
        bundle = build(SchemeConfig(bmi="rbmi", mil="dmil", ucp=True))
        assert isinstance(bundle.mem_policy, RoundRobinBMI)
        assert isinstance(bundle.limiter, DynamicLimiter)
        assert bundle.ucp is not None

    def test_qbmi_with_init_hints(self):
        bundle = build(SchemeConfig(bmi="qbmi",
                                    qbmi_init_req_per_minst=(2, 17)))
        assert isinstance(bundle.mem_policy, QuotaBMI)
        assert bundle.mem_policy.estimators[1].value == 17

    def test_smil_limit_arity_checked(self):
        scheme = SchemeConfig(mil="smil", smil_limits=(1,))
        with pytest.raises(ValueError):
            build(scheme, num_kernels=2)

    def test_smil_builds_static_limiter(self):
        bundle = build(SchemeConfig(mil="smil", smil_limits=(3, None)))
        assert isinstance(bundle.limiter, StaticLimiter)
        assert bundle.limiter.limits() == [3, None]

    def test_describe(self):
        assert SchemeConfig().describe() == "baseline"
        text = SchemeConfig(bmi="qbmi", mil="dmil").describe()
        assert "QBMI" in text and "DMIL" in text
        assert "SMIL(3,Inf)" in SchemeConfig(
            mil="smil", smil_limits=(3, None)).describe()

    def test_smk_gate_built_from_quotas(self):
        bundle = build(SchemeConfig(smk_quotas=(10, 20)))
        assert isinstance(bundle.smk_gate, SMKQuotaGate)

    def test_ucp_skipped_for_single_kernel(self):
        bundle = build(SchemeConfig(ucp=True), num_kernels=1)
        assert bundle.ucp is None


class TestSMKQuotaGate:
    def test_blocks_exhausted_kernel(self):
        gate = SMKQuotaGate([2, 2])
        gate.note_issue(0)
        gate.note_issue(0)
        assert not gate.can_issue(0)
        assert gate.can_issue(1)

    def test_resets_when_all_resident_drained(self):
        gate = SMKQuotaGate([1, 1])
        gate.note_issue(0)
        gate.maybe_reset([0, 1])
        assert not gate.can_issue(0), "kernel 1 still has quota"
        gate.note_issue(1)
        gate.maybe_reset([0, 1])
        assert gate.can_issue(0) and gate.can_issue(1)
        assert gate.epochs == 1

    def test_non_resident_kernels_cannot_livelock(self):
        gate = SMKQuotaGate([1, 5])
        gate.note_issue(0)
        gate.maybe_reset([0])  # kernel 1 not resident on this SM
        assert gate.can_issue(0)

    def test_rejects_bad_quota(self):
        with pytest.raises(ValueError):
            SMKQuotaGate([0, 2])


class TestGlobalDMIL:
    def test_monitor_feeds_shared_state(self):
        from repro.core.mil import GlobalLimiterView
        cfg = scaled_config()
        tags = SetAssocCache(cfg.l1d)
        shared = {}
        monitor = SchemeConfig(mil="gdmil").build(2, cfg, tags,
                                                  shared=shared, sm_id=0)
        follower = SchemeConfig(mil="gdmil").build(2, cfg, tags,
                                                   shared=shared, sm_id=1)
        assert isinstance(monitor.limiter, GlobalLimiterView)
        assert monitor.limiter.shared is follower.limiter.shared
        assert monitor.limiter.is_monitor and not follower.limiter.is_monitor

    def test_follower_events_ignored(self):
        from repro.core.mil import GlobalLimiterView
        cfg = scaled_config()
        tags = SetAssocCache(cfg.l1d)
        shared = {}
        SchemeConfig(mil="gdmil").build(2, cfg, tags, shared=shared, sm_id=0)
        follower = SchemeConfig(mil="gdmil").build(2, cfg, tags,
                                                   shared=shared, sm_id=1)
        window = cfg.sample_window
        follower.limiter.observe_inflight(0, 10)
        for _ in range(window * 4):
            follower.limiter.note_rsfail(0)
        for _ in range(window):
            follower.limiter.note_request(0, 5)
        assert follower.limiter.limits()[0] is None, (
            "non-monitor SMs must not drive the shared MILG")

    def test_describe_mentions_global(self):
        assert "GlobalDMIL" in SchemeConfig(mil="gdmil").describe()


class TestDmilRecoveryKnob:
    def test_recovery_flag_propagates(self):
        cfg = scaled_config()
        tags = SetAssocCache(cfg.l1d)
        bundle = SchemeConfig(mil="dmil", dmil_recovery=False).build(
            2, cfg, tags)
        assert all(not m.recovery for m in bundle.limiter.milgs)
