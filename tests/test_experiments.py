"""Tests for the per-figure experiment drivers (fast budgets)."""

import pytest

from repro.config import scaled_config
from repro.harness import experiments as ex
from repro.harness.runner import ExperimentRunner, RunnerSettings
from repro.workloads.mixes import mix

FAST = RunnerSettings(iso_cycles=1500, curve_cycles=1200, concurrent_cycles=2000)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(scaled_config(), FAST)


class TestCharacterisationDrivers:
    def test_table2_rows_complete(self, runner):
        rows = ex.table2_characteristics(runner)
        assert len(rows) == 13
        for row in rows:
            assert {"name", "l1d_miss_rate", "l1d_rsfail_rate",
                    "lsu_stall_pct", "paper"} <= set(row)

    def test_classify_measured_threshold(self):
        rows = [{"name": "a", "lsu_stall_pct": 0.1},
                {"name": "b", "lsu_stall_pct": 0.5}]
        assert ex.classify_measured(rows) == {"a": "C", "b": "M"}

    def test_figure2_sorted_by_alu(self, runner):
        rows = ex.figure2_utilization(runner)
        utils = [r["alu_utilization"] for r in rows]
        assert utils == sorted(utils, reverse=True)


class TestSweetSpotDrivers:
    def test_figure3_result_structure(self, runner):
        res = ex.figure3_sweet_spot(runner, "bp", "sv")
        assert set(res.curves) == {"bp", "sv"}
        assert len(res.partition) == 2
        assert res.theoretical_ws > 0

    def test_figure4_rows(self, runner):
        rows = ex.figure4_gap(runner, pairs=[mix("pf", "bp")])
        assert rows[0].mix_class == "C+C"
        assert rows[0].theoretical > 0 and rows[0].achieved > 0

    def test_gap_by_class_includes_all(self, runner):
        rows = ex.figure4_gap(runner, pairs=[mix("pf", "bp"), mix("bp", "sv")])
        by_class = ex.gap_by_class(rows)
        assert {"C+C", "C+M", "ALL"} <= set(by_class)


class TestSweeps:
    def test_scheme_sweep_accessors(self, runner):
        sweep = ex.scheme_sweep(runner, ("ws", "ws-qbmi"), [mix("bp", "sv")])
        assert sweep.mixes() == ["bp+sv"]
        assert sweep.class_of("bp+sv") == "C+M"
        out = sweep.outcome("bp+sv", "ws")
        assert out.scheme == "ws"
        assert sweep.mean_metric("ws", "weighted_speedup") == pytest.approx(
            out.weighted_speedup)

    def test_improvement_metric(self, runner):
        sweep = ex.scheme_sweep(runner, ("ws", "ws-qbmi"), [mix("bp", "sv")])
        delta = sweep.improvement("ws-qbmi", "ws")
        assert isinstance(delta, float)

    def test_smil_sweep_and_optimum(self, runner):
        surface = ex.figure9_smil_sweep(runner, "bp", "sv", limits=(1, None))
        assert len(surface) == 4
        key, value = ex.smil_optimum(surface)
        assert surface[key] == value


class TestTimelineDrivers:
    def test_figure6_keys(self, runner):
        series = ex.figure6_timelines(runner, "bp", "sv", interval=500,
                                      cycles=1500)
        assert set(series) == {"bp_alone", "sv_alone", "bp_shared", "sv_shared"}
        assert all(len(v) >= 2 for v in series.values())

    def test_figure8_schemes(self, runner):
        data = ex.figure8_issue_timelines(runner, "bp", "sv", interval=500,
                                          cycles=1500)
        assert set(data) == {"ws", "ws-rbmi", "ws-qbmi"}
        for series in data.values():
            assert len(series["norm_ipc"]) == 2


class TestOverheadDriver:
    def test_scales_with_kernels_and_sms(self):
        two = ex.hardware_overhead(2, 16)
        three = ex.hardware_overhead(3, 16)
        assert three["milg_per_sm_bits"] > two["milg_per_sm_bits"]
        assert two["milg_gpu_bits"] == two["milg_per_sm_bits"] * 16
